"""The QCircuit dataflow IR dialect (paper §6).

A gate-level dataflow-semantics dialect similar to QIRO/QSSA: qubits
flow through ``gate`` ops, measurements yield the post-measurement
qubit plus an ``i1`` result, and ``qalloc``/``qfree`` bracket qubit
lifetimes.  Callable ops correspond to QIR callable intrinsics.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import LoweringError, SourceSpan
from repro.ir.core import Operation, Value
from repro.ir.module import Builder
from repro.ir.types import ArrayType, CallableType, I1, QubitType, Type
from repro.parameters import is_symbolic

QALLOC = "qcirc.qalloc"
QFREE = "qcirc.qfree"
QFREEZ = "qcirc.qfreez"
MEASURE = "qcirc.measure"
GATE = "qcirc.gate"
ARRPACK = "qcirc.arrpack"
ARRUNPACK = "qcirc.arrunpack"
CALL = "qcirc.call"
CALLABLE_CREATE = "qcirc.callable_create"
CALLABLE_ADJOINT = "qcirc.callable_adjoint"
CALLABLE_CONTROL = "qcirc.callable_control"
CALLABLE_INVOKE = "qcirc.callable_invoke"

_QUBIT = QubitType()
_CALLABLE = CallableType()

Loc = Optional[SourceSpan]

#: Gates the dialect understands, with parameter counts.
GATE_PARAM_COUNTS = {
    "x": 0,
    "y": 0,
    "z": 0,
    "h": 0,
    "s": 0,
    "sdg": 0,
    "t": 0,
    "tdg": 0,
    "sx": 0,
    "sxdg": 0,
    "p": 1,
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "swap": 0,
}

#: Gates that are their own adjoint.
HERMITIAN_GATES = {"x", "y", "z", "h", "swap"}

#: Adjoint pairs for non-Hermitian parameterless gates.
ADJOINT_PAIRS = {
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "sx": "sxdg",
    "sxdg": "sx",
}

#: Number of target qubits per gate (all others take one target).
GATE_NUM_TARGETS = {"swap": 2}


def qalloc(builder: Builder, loc: Loc = None) -> Value:
    """Allocate a qubit in state |0>."""
    return builder.create(QALLOC, [], [_QUBIT], loc=loc).result


def qfree(builder: Builder, qubit: Value, loc: Loc = None) -> Operation:
    """Reset and free a qubit."""
    return builder.create(QFREE, [qubit], [], loc=loc)


def qfreez(builder: Builder, qubit: Value, loc: Loc = None) -> Operation:
    """Free a qubit assumed to be |0> (skips the reset)."""
    return builder.create(QFREEZ, [qubit], [], loc=loc)


def measure(
    builder: Builder, qubit: Value, loc: Loc = None
) -> tuple[Value, Value]:
    """Measure in the standard basis: yields (new qubit state, i1)."""
    op = builder.create(MEASURE, [qubit], [_QUBIT, I1], loc=loc)
    return op.results[0], op.results[1]


def gate(
    builder: Builder,
    name: str,
    controls: Sequence[Value],
    targets: Sequence[Value],
    params: Sequence[float] = (),
    ctrl_states: Optional[Sequence[int]] = None,
    loc: Loc = None,
) -> list[Value]:
    """``gate G [%c1,...,%cM] %q1,...,%qN``: a (multi-)controlled gate.

    ``ctrl_states`` selects the control polarity per control qubit
    (1 = control on |1>, the default; 0 = control on |0>).  Returns the
    new SSA values for all M+N qubits, controls first.
    """
    if name not in GATE_PARAM_COUNTS:
        raise LoweringError(f"unknown gate {name!r}")
    if GATE_PARAM_COUNTS[name] != len(params):
        raise LoweringError(
            f"gate {name!r} takes {GATE_PARAM_COUNTS[name]} params, "
            f"got {len(params)}"
        )
    expected_targets = GATE_NUM_TARGETS.get(name, 1)
    if len(targets) != expected_targets:
        raise LoweringError(
            f"gate {name!r} takes {expected_targets} targets, got {len(targets)}"
        )
    states = tuple(ctrl_states) if ctrl_states is not None else (1,) * len(controls)
    if len(states) != len(controls):
        raise LoweringError("ctrl_states length must match controls")
    operands = [*controls, *targets]
    op = builder.create(
        GATE,
        operands,
        [_QUBIT] * len(operands),
        {
            "gate": name,
            "num_controls": len(controls),
            # Symbolic ParamExprs pass through unchanged; everything
            # else coerces to float (docs/variational.md).
            "params": tuple(
                p if is_symbolic(p) else float(p) for p in params
            ),
            "ctrl_states": states,
        },
        loc=loc,
    )
    return list(op.results)


def gate_controls(op: Operation) -> tuple[Value, ...]:
    return op.operands[: op.attrs["num_controls"]]

def gate_targets(op: Operation) -> tuple[Value, ...]:
    return op.operands[op.attrs["num_controls"]:]


def arrpack(
    builder: Builder, values: Sequence[Value], element: Type, loc: Loc = None
) -> Value:
    return builder.create(
        ARRPACK, list(values), [ArrayType(element, len(values))], loc=loc
    ).result


def arrunpack(builder: Builder, array: Value, loc: Loc = None) -> list[Value]:
    array_type = array.type
    op = builder.create(
        ARRUNPACK, [array], [array_type.element] * array_type.n, loc=loc
    )
    return list(op.results)


def call(
    builder: Builder,
    callee: str,
    args: Sequence[Value],
    result_types: Sequence[Type],
    loc: Loc = None,
) -> Operation:
    return builder.create(
        CALL, list(args), list(result_types), {"callee": callee}, loc=loc
    )


def callable_create(builder: Builder, callee: str, loc: Loc = None) -> Value:
    """Create a callable value backed by a function's specialization
    table (lowered to ``__quantum__rt__callable_create``)."""
    return builder.create(
        CALLABLE_CREATE, [], [_CALLABLE], {"callee": callee}, loc=loc
    ).result


def callable_adjoint(builder: Builder, fn: Value, loc: Loc = None) -> Value:
    """Mark a callable to run its adjoint specialization."""
    return builder.create(CALLABLE_ADJOINT, [fn], [_CALLABLE], loc=loc).result


def callable_control(builder: Builder, fn: Value, loc: Loc = None) -> Value:
    """Mark a callable to run its controlled specialization."""
    return builder.create(CALLABLE_CONTROL, [fn], [_CALLABLE], loc=loc).result


def callable_invoke(
    builder: Builder,
    fn: Value,
    args: Sequence[Value],
    result_types: Sequence[Type],
    loc: Loc = None,
) -> Operation:
    """Invoke a callable (lowered to ``__quantum__rt__callable_invoke``)."""
    return builder.create(
        CALLABLE_INVOKE, [fn, *args], list(result_types), loc=loc
    )
