"""Baseline circuit-oriented compilers (paper §8).

Handwritten gate-level implementations of the benchmark suite in three
styles, reproducing the characteristic differences the paper attributes
to each toolchain:

* **Qiskit style** — textbook circuits; multi-controlled gates
  decomposed with the costlier full-Toffoli ladder.
* **Quipper style** — oracles synthesized from classical logic with one
  ancilla per XOR (the paper credits tweedledum's avoidance of this
  for ASDF's win, §8.3), and a renaming-based IQFT with no SWAP gates.
* **Q# style** — Selinger's multi-control decomposition (like ASDF),
  plus a Classic-QDK-like QIR callables lowering for Table 1.

All baselines run through the same shared transpiler substitute
(:mod:`repro.baselines.transpile`), mirroring the paper's methodology
of optimizing every compiler's output with Qiskit -O3.
"""

from repro.baselines.circuits import BASELINE_STYLES, build_baseline
from repro.baselines.transpile import transpile_o3
from repro.baselines.qsharp_qir import qsharp_callable_counts

__all__ = [
    "BASELINE_STYLES",
    "build_baseline",
    "qsharp_callable_counts",
    "transpile_o3",
]
