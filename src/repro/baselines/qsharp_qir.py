"""A Classic-Q#-QDK-style QIR callables model (paper §8.2, Table 1).

The Classic Q# QDK lowers first-class operation values to QIR
callables: every operation literal or partial application reaching a
higher-order standard-library function (``ApplyToEach``,
``ApplyToEachA``, oracles passed as arguments) emits
``__quantum__rt__callable_create``, and every dynamic application
emits ``__quantum__rt__callable_invoke``.  This module describes the
idiomatic Q# implementation of each benchmark (after Wojcieszyn [60])
as a list of such uses and derives the counts, reproducing Table 1's
shape: nonzero for Q#, zero for fully inlined ASDF.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class _HigherOrderUse:
    """One higher-order construct in idiomatic Q# source."""

    description: str
    creates: int
    invokes: int


#: Idiomatic Q# structure per benchmark: which operation values flow
#: into higher-order functions or functor applications.
_QSHARP_PROGRAMS: dict[str, list[_HigherOrderUse]] = {
    "bv": [
        _HigherOrderUse("ApplyToEach(H, register) setup", 1, 2),
        _HigherOrderUse("oracle passed to RunOnce harness", 2, 2),
        _HigherOrderUse("ApplyToEach(H, register) unprep", 1, 2),
        _HigherOrderUse("MeasureEachZ partial application", 1, 2),
    ],
    "dj": [
        _HigherOrderUse("ApplyToEach(H, register) setup", 1, 1),
        _HigherOrderUse("oracle passed as argument", 1, 1),
        _HigherOrderUse("ApplyToEach(H, register) unprep", 1, 1),
        _HigherOrderUse("MeasureEachZ partial application", 1, 1),
    ],
    "grover": [
        _HigherOrderUse("ApplyToEach(H, register)", 1, 1),
        _HigherOrderUse("oracle passed to GroverIteration", 2, 1),
        _HigherOrderUse("Controlled functor in diffuser", 2, 1),
        _HigherOrderUse("MeasureEachZ partial application", 1, 1),
    ],
    "period": [
        _HigherOrderUse("ApplyToEach(H, register)", 2, 3),
        _HigherOrderUse("oracle as argument to estimation loop", 4, 5),
        _HigherOrderUse("Adjoint QFTLE functor application", 4, 5),
        _HigherOrderUse("MeasureEachZ partial application", 2, 3),
    ],
    "simon": [
        _HigherOrderUse("ApplyToEach(H, register)", 1, 1),
        _HigherOrderUse("oracle passed as argument", 1, 1),
        _HigherOrderUse("ApplyToEach(H, register) unprep", 1, 1),
        _HigherOrderUse("MeasureEachZ partial application", 1, 1),
    ],
}


def qsharp_callable_counts(algorithm: str) -> tuple[int, int]:
    """(callable_create, callable_invoke) counts for the Q# baseline."""
    uses = _QSHARP_PROGRAMS[algorithm]
    return (
        sum(use.creates for use in uses),
        sum(use.invokes for use in uses),
    )
