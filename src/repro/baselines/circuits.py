"""Gate-level baseline implementations of the benchmark suite (§8)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.algorithms.kernels import grover_iterations
from repro.errors import SynthesisError
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement

BASELINE_STYLES = ("qiskit", "quipper", "qsharp")


@dataclass
class _CircuitBuilder:
    """Imperative circuit construction helper for the baselines."""

    style: str
    circuit: Circuit = field(default_factory=lambda: Circuit(0, 0))

    def qubits(self, count: int) -> list[int]:
        start = self.circuit.num_qubits
        self.circuit.num_qubits += count
        return list(range(start, start + count))

    def gate(self, name, targets, controls=(), params=(), ctrl_states=()):
        self.circuit.add(
            CircuitGate(
                name,
                tuple(targets),
                tuple(controls),
                tuple(params),
                tuple(ctrl_states),
            )
        )

    def h_layer(self, qubits) -> None:
        for q in qubits:
            self.gate("h", [q])

    def minus_ancilla(self) -> int:
        (q,) = self.qubits(1)
        self.gate("x", [q])
        self.gate("h", [q])
        return q

    def unminus_ancilla(self, q: int) -> None:
        self.gate("h", [q])
        self.gate("x", [q])

    def measure_all(self, qubits) -> None:
        for q in qubits:
            bit = self.circuit.num_bits
            self.circuit.num_bits += 1
            self.circuit.add(Measurement(q, bit))
            self.circuit.output_bits.append(bit)

    # ------------------------------------------------------------------
    # Oracle styles.
    # ------------------------------------------------------------------
    def parity_oracle(self, sources: list[int], target: int) -> None:
        """target ^= XOR of sources, in the style's idiom."""
        if self.style == "quipper":
            # One ancilla per XOR: a chain of freshly allocated wires
            # (the paper's explanation for Quipper's qubit counts).
            if not sources:
                return
            previous = sources[0]
            chain: list[int] = []
            for source in sources[1:]:
                (ancilla,) = self.qubits(1)
                self.gate("x", [ancilla], [previous])
                self.gate("x", [ancilla], [source])
                chain.append(ancilla)
                previous = ancilla
            self.gate("x", [target], [previous])
            # Uncompute the chain in reverse: each ancilla's
            # predecessor must still hold its parity when undone.
            predecessors = [sources[0]] + chain[:-1]
            for source, ancilla, predecessor in reversed(
                list(zip(sources[1:], chain, predecessors))
            ):
                self.gate("x", [ancilla], [predecessor])
                self.gate("x", [ancilla], [source])
        else:
            for source in sources:
                self.gate("x", [target], [source])

    def and_oracle(self, sources: list[int], target: int) -> None:
        """target ^= AND of sources (one big multi-controlled X)."""
        self.gate("x", [target], sources)

    def iqft(self, qubits: list[int]) -> list[int]:
        """Inverse QFT; returns the (possibly renamed) output order.

        Quipper uses renaming-based swaps (paper §8.3): no SWAP gates,
        the caller reads the qubits in reversed order instead.
        """
        n = len(qubits)
        if self.style == "quipper":
            # Renaming form: the cascade conjugated by the bit-reversal
            # relabeling, read out in reversed order — algebraically
            # IQFT = swaps . (swaps . cascade_dagger . swaps).
            wires = list(reversed(qubits))
            order = list(reversed(qubits))
        else:
            for i in range(n // 2):
                self.gate("swap", [qubits[i], qubits[n - 1 - i]])
            wires = list(qubits)
            order = list(qubits)
        # Inverse-cascade body (adjoint of the QFT used in synthesis).
        for i in reversed(range(n)):
            for j in reversed(range(i + 1, n)):
                angle = -math.pi / (2 ** (j - i))
                self.gate("p", [wires[i]], [wires[j]], [angle])
            self.gate("h", [wires[i]])
        return order


def build_baseline(algorithm: str, style: str, n: int) -> Circuit:
    """Build one benchmark in one baseline style at input size ``n``."""
    if style not in BASELINE_STYLES:
        raise SynthesisError(f"unknown baseline style {style!r}")
    builder = _CircuitBuilder(style)
    if algorithm == "bv":
        _bernstein_vazirani(builder, n)
    elif algorithm == "dj":
        _deutsch_jozsa(builder, n)
    elif algorithm == "grover":
        _grover(builder, n)
    elif algorithm == "simon":
        _simon(builder, n)
    elif algorithm == "period":
        _period(builder, n)
    else:
        raise SynthesisError(f"unknown algorithm {algorithm!r}")
    return builder.circuit


def _bernstein_vazirani(builder: _CircuitBuilder, n: int) -> None:
    secret = [1 - (i % 2) for i in range(n)]  # Alternating 1010...
    data = builder.qubits(n)
    target = builder.minus_ancilla()
    builder.h_layer(data)
    builder.parity_oracle(
        [q for q, s in zip(data, secret) if s], target
    )
    builder.h_layer(data)
    builder.unminus_ancilla(target)
    builder.measure_all(data)


def _deutsch_jozsa(builder: _CircuitBuilder, n: int) -> None:
    data = builder.qubits(n)
    target = builder.minus_ancilla()
    builder.h_layer(data)
    builder.parity_oracle(data, target)  # Balanced: XOR of all bits.
    builder.h_layer(data)
    builder.unminus_ancilla(target)
    builder.measure_all(data)


def _grover(builder: _CircuitBuilder, n: int) -> None:
    data = builder.qubits(n)
    target = builder.minus_ancilla()
    builder.h_layer(data)
    for _ in range(grover_iterations(n)):
        builder.and_oracle(data, target)  # All-ones oracle.
        # Textbook diffuser: H X (n-1)-controlled Z X H.
        builder.h_layer(data)
        for q in data:
            builder.gate("x", [q])
        builder.gate("h", [data[-1]])
        builder.gate("x", [data[-1]], data[:-1])
        builder.gate("h", [data[-1]])
        for q in data:
            builder.gate("x", [q])
        builder.h_layer(data)
    builder.unminus_ancilla(target)
    builder.measure_all(data)


def _simon(builder: _CircuitBuilder, n: int) -> None:
    secret = [1 - (i % 2) for i in range(n)]  # Alternating 1010...
    pivot = 0
    data = builder.qubits(n)
    output = builder.qubits(n)
    builder.h_layer(data)
    # f(x) = x ^ (s & x_pivot): each output bit is a parity of one or
    # two inputs, synthesized in the style's oracle idiom.
    for index, (x_qubit, y_qubit) in enumerate(zip(data, output)):
        # f_i = x_i ^ (s_i & x_pivot); x_pivot ^ x_pivot cancels.
        sources = [x_qubit]
        if secret[index]:
            if index == pivot:
                sources = []
            else:
                sources.append(data[pivot])
        builder.parity_oracle(sources, y_qubit)
    builder.h_layer(data)
    builder.measure_all(data)


def _period(builder: _CircuitBuilder, n: int) -> None:
    mask = [0 if i == 0 else 1 for i in range(n)]
    data = builder.qubits(n)
    output = builder.qubits(n)
    builder.h_layer(data)
    for x_qubit, y_qubit, m_bit in zip(data, output, mask):
        if m_bit:
            builder.parity_oracle([x_qubit], y_qubit)
    order = builder.iqft(data)
    builder.measure_all(order)
