"""The shared transpiler substitute (paper §8.3, methodology step 2).

The paper optimizes every compiler's assembly with the Qiskit -O3
transpiler before resource estimation.  The equivalent here: decompose
multi-controlled gates with the style's decomposition (Selinger for
ASDF/Q#, the full-Toffoli ladder for Qiskit/Quipper), then run the
shared gate-cancellation peephole (without ASDF's relaxed peephole,
which is a compiler feature rather than a transpiler one).
"""

from __future__ import annotations

from repro.qcircuit import (
    Circuit,
    decompose_multi_controlled,
    run_peephole,
)

#: Which decomposition each toolchain uses (paper §8.3 credits
#: Selinger's scheme for ASDF's and Q#'s Grover win).
STYLE_USES_SELINGER = {
    "asdf": True,
    "qsharp": True,
    "qiskit": False,
    "quipper": False,
}


def transpile_o3(circuit: Circuit, style: str = "asdf") -> Circuit:
    """Decompose and optimize one compiler's output circuit."""
    use_selinger = STYLE_USES_SELINGER.get(style, True)
    decomposed = decompose_multi_controlled(circuit, use_selinger=use_selinger)
    return run_peephole(decomposed, relaxed=False)
