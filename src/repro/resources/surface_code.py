"""Surface-code physical resource estimation (paper §8.3).

Models the paper's default estimation parameters: a [[338, 1, 13]]
surface code (distance d = 13, 2 d^2 = 338 physical qubits per logical
qubit) with a 5.2 microsecond logical cycle time.  The layout charges
the Azure-style fast-block routing overhead (2 Q + sqrt(8 Q) + 1
logical tiles for Q algorithm qubits), and T states come from magic
state factories sized so production keeps up with consumption.

Absolute numbers will not match the closed-source Azure Quantum
Resource Estimator; the *shape* across compilers and input sizes is
what the reproduction preserves, because it is driven by the same
logical counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.qcircuit.circuit import Circuit
from repro.resources.logical import LogicalCounts, count_logical_resources


@dataclass(frozen=True)
class SurfaceCodeParams:
    """Tunable model parameters (defaults follow the paper's setup)."""

    code_distance: int = 13
    physical_per_logical: int = 338  # 2 * d^2 for d = 13.
    logical_cycle_seconds: float = 5.2e-6
    #: T gates synthesized per arbitrary rotation (approx.
    #: 3 log2(1/eps) for eps ~ 1e-10 via gridsynth-style synthesis).
    t_per_rotation: int = 17
    #: One T factory: physical qubits and logical cycles per T state
    #: (15-to-1 distillation at a comparable distance).
    factory_physical_qubits: int = 6240
    factory_cycles_per_t: int = 6
    #: Cap on concurrently running factories.
    max_factories: int = 64
    #: Whether logical operations execute sequentially (one per logical
    #: cycle), as the Azure Quantum Resource Estimator's runtime model
    #: effectively assumes — the paper's Fig. 11 runtimes grow linearly
    #: with input size even for depth-parallel circuits.  Set False to
    #: use ASAP-parallel circuit depth instead.
    sequential_execution: bool = True


@dataclass(frozen=True)
class PhysicalEstimate:
    """The output of physical resource estimation."""

    logical: LogicalCounts
    algorithm_logical_qubits: int
    routed_logical_qubits: int
    t_states: int
    factories: int
    physical_qubits: int
    runtime_seconds: float

    @property
    def physical_kiloqubits(self) -> float:
        return self.physical_qubits / 1000.0

    @property
    def runtime_microseconds(self) -> float:
        return self.runtime_seconds * 1e6


def estimate_physical_resources(
    circuit_or_counts: Circuit | LogicalCounts,
    params: SurfaceCodeParams | None = None,
) -> PhysicalEstimate:
    """Estimate physical qubits and runtime on fault-tolerant hardware."""
    params = params or SurfaceCodeParams()
    if isinstance(circuit_or_counts, LogicalCounts):
        counts = circuit_or_counts
    else:
        counts = count_logical_resources(circuit_or_counts)

    q = max(counts.logical_qubits, 1)
    routed = 2 * q + math.ceil(math.sqrt(8 * q)) + 1

    t_states = counts.t_gates + counts.rotations * params.t_per_rotation

    # Logical time: one cycle per operation under the sequential model
    # (matching the Azure RE's linear-growth runtimes), else one cycle
    # per ASAP layer.
    if params.sequential_execution:
        total_ops = (
            counts.clifford_gates
            + counts.t_gates
            + counts.rotations
            + counts.measurements
        )
        base_cycles = max(total_ops, 1)
    else:
        base_cycles = max(counts.logical_depth, 1)

    factories = 0
    if t_states:
        # Enough factories that T production matches the T demand rate,
        # assuming T consumption spreads across the base cycles.
        needed_rate = t_states / base_cycles
        factories = max(
            1,
            min(
                params.max_factories,
                math.ceil(needed_rate * params.factory_cycles_per_t),
            ),
        )
        production_rate = factories / params.factory_cycles_per_t
        # If capped, the runtime stretches until production suffices.
        t_limited_cycles = math.ceil(t_states / production_rate)
        cycles = max(base_cycles, t_limited_cycles)
    else:
        cycles = base_cycles

    physical = (
        routed * params.physical_per_logical
        + factories * params.factory_physical_qubits
    )
    runtime = cycles * params.logical_cycle_seconds
    return PhysicalEstimate(
        logical=counts,
        algorithm_logical_qubits=q,
        routed_logical_qubits=routed,
        t_states=t_states,
        factories=factories,
        physical_qubits=physical,
        runtime_seconds=runtime,
    )
