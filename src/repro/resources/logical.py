"""Logical resource counting.

Counts the fault-tolerant cost drivers of a decomposed circuit (single
qubit gates + CX only): T gates, non-Clifford rotations (each later
charged a synthesis cost in T), Clifford gates, measurements, and the
logical depth (ASAP scheduling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset


def _is_t_like(gate: CircuitGate) -> bool:
    if gate.name in ("t", "tdg"):
        return True
    if gate.name in ("p", "rz", "rx", "ry"):
        theta = gate.params[0] % (2 * math.pi)
        eighth = math.pi / 4
        remainder = theta % eighth
        on_eighth = min(remainder, eighth - remainder) < 1e-12
        quarter = math.pi / 2
        remainder_q = theta % quarter
        on_quarter = min(remainder_q, quarter - remainder_q) < 1e-12
        return on_eighth and not on_quarter
    return False


def _is_arbitrary_rotation(gate: CircuitGate) -> bool:
    if gate.name not in ("p", "rz", "rx", "ry"):
        return False
    theta = gate.params[0] % (2 * math.pi)
    eighth = math.pi / 4
    remainder = theta % eighth
    return min(remainder, eighth - remainder) >= 1e-12


@dataclass(frozen=True)
class LogicalCounts:
    """Logical-level resource counts of one circuit."""

    logical_qubits: int
    t_gates: int
    rotations: int
    clifford_gates: int
    measurements: int
    logical_depth: int

    @property
    def has_magic_states(self) -> bool:
        return self.t_gates > 0 or self.rotations > 0


def count_logical_resources(circuit: Circuit) -> LogicalCounts:
    """Count logical resources; the circuit should already be
    decomposed to single-qubit gates and CX."""
    t_gates = 0
    rotations = 0
    cliffords = 0
    measurements = 0
    for inst in circuit.instructions:
        if isinstance(inst, Measurement):
            measurements += 1
        elif isinstance(inst, Reset):
            cliffords += 1
        elif isinstance(inst, CircuitGate):
            if _is_t_like(inst):
                t_gates += 1
            elif _is_arbitrary_rotation(inst):
                rotations += 1
            else:
                cliffords += 1
    return LogicalCounts(
        logical_qubits=circuit.num_qubits,
        t_gates=t_gates,
        rotations=rotations,
        clifford_gates=cliffords,
        measurements=measurements,
        logical_depth=circuit.depth(),
    )
