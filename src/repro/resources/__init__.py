"""Fault-tolerant resource estimation (the Azure Quantum Resource
Estimator substitute, paper §8.3)."""

from repro.resources.logical import LogicalCounts, count_logical_resources
from repro.resources.surface_code import (
    PhysicalEstimate,
    SurfaceCodeParams,
    estimate_physical_resources,
)

__all__ = [
    "LogicalCounts",
    "PhysicalEstimate",
    "SurfaceCodeParams",
    "count_logical_resources",
    "estimate_physical_resources",
]
