"""Transformation-based reversible synthesis (the tweedledum substitute).

Implements the Miller–Maslov–Dueck transformation-based algorithm
(paper refs [33, 50]) that ASDF uses via tweedledum: given a
permutation of std basis vectors, produce a cascade of multi-controlled
X gates realizing it.  Processing inputs in increasing order guarantees
already-fixed rows are never disturbed, because every emitted gate's
control set forces a value at least as large as the row being fixed.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SynthesisError
from repro.qcircuit.circuit import CircuitGate

#: Permutations act on bit strings; bound the explicit table size.
MAX_PERMUTATION_QUBITS = 16


def _ones(value: int, width: int) -> list[int]:
    """Qubit positions (0 = most significant) whose bit is set."""
    return [q for q in range(width) if (value >> (width - 1 - q)) & 1]


def _apply_mcx_to_table(
    table: list[int], controls_mask: int, target_mask: int
) -> None:
    """Compose an MCX (positive controls) into the output side of the table."""
    for i, value in enumerate(table):
        if value & controls_mask == controls_mask:
            table[i] = value ^ target_mask


def synthesize_permutation(
    permutation: Sequence[int], num_qubits: int
) -> list[CircuitGate]:
    """Synthesize gates realizing ``x -> permutation[x]`` on std vectors.

    ``permutation`` is a bijection over ``range(2**num_qubits)``; basis
    state index follows the simulator convention (qubit 0 is the most
    significant bit).  Returns multi-controlled X gates, all controls
    positive.
    """
    if num_qubits > MAX_PERMUTATION_QUBITS:
        raise SynthesisError(
            f"permutation on {num_qubits} qubits is too large to tabulate"
        )
    size = 2**num_qubits
    table = list(permutation)
    if sorted(table) != list(range(size)):
        raise SynthesisError("input is not a permutation")

    recorded: list[CircuitGate] = []

    def emit(controls_mask: int, target_bit: int) -> None:
        target_mask = 1 << (num_qubits - 1 - target_bit)
        controls = _ones(controls_mask, num_qubits)
        recorded.append(
            CircuitGate("x", (target_bit,), tuple(controls))
        )
        _apply_mcx_to_table(table, controls_mask, target_mask)

    for x in range(size):
        y = table[x]
        if y == x:
            continue
        # Step 1: set the bits that x has but y lacks, controlling on
        # the current ones of y (y > x here, so fixed rows are safe).
        missing = x & ~y
        for bit in _ones(missing, num_qubits):
            emit(table[x], bit)
        # Step 2: clear the extra bits, controlling on the remaining
        # ones (minus the target itself).
        y = table[x]
        extra = y & ~x
        for bit in _ones(extra, num_qubits):
            mask = 1 << (num_qubits - 1 - bit)
            emit(table[x] & ~mask, bit)

    if table != list(range(size)):  # pragma: no cover - algorithm invariant
        raise SynthesisError("transformation-based synthesis failed to converge")
    # Gates were composed on the output side; the circuit applies them
    # in reverse (each MCX is self-inverse).
    return list(reversed(recorded))


def permutation_from_vector_map(
    in_bits: Sequence[tuple[int, ...]],
    out_bits: Sequence[tuple[int, ...]],
    num_qubits: int,
) -> list[int]:
    """The total permutation mapping each input eigenbit pattern to the
    respective output pattern, identity off the common support.

    Well-typedness guarantees both sides cover the same set of
    patterns; this is re-checked here.
    """

    def to_index(bits: tuple[int, ...]) -> int:
        value = 0
        for bit in bits:
            value = (value << 1) | bit
        return value

    in_indices = [to_index(bits) for bits in in_bits]
    out_indices = [to_index(bits) for bits in out_bits]
    if sorted(in_indices) != sorted(out_indices):
        raise SynthesisError(
            "basis translation sides span different std subspaces"
        )
    table = list(range(2**num_qubits))
    for src, dst in zip(in_indices, out_indices):
        table[src] = dst
    return table
