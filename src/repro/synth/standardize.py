"""Determining standardizations for a basis translation (Algorithm E6).

Standardization translates qubits from their primitive basis to ``std``
at the start of synthesis; destandardization translates back at the
end.  Each is *unconditional* when the same primitive basis appears at
the same position on both sides of the translation, else *conditional*
(it must be controlled on the translation's predicates).

Inseparable primitive bases (``fourier``) complicate the walk: the
algorithm inserts *padding* pseudo-elements so both deques stay aligned
on the same qubit offset (paper Fig. E14).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.basis.basis import Basis
from repro.basis.builtin import BuiltinBasis
from repro.basis.literal import BasisLiteral
from repro.basis.primitive import PrimitiveBasis


@dataclass(frozen=True)
class Standardization:
    """One (de)standardization: which basis, which qubits, conditional?"""

    prim: PrimitiveBasis
    offset: int
    dim: int
    conditional: bool


@dataclass(frozen=True)
class _Element:
    """A deque entry: a primitive-basis range or padding."""

    prim: Optional[PrimitiveBasis]  # None means padding.
    dim: int

    @property
    def is_padding(self) -> bool:
        return self.prim is None


def _ranges(basis: Basis) -> deque[_Element]:
    """The (prim, dim) ranges across the basis elements."""
    out: deque[_Element] = deque()
    for element in basis.elements:
        if isinstance(element, BasisLiteral):
            out.append(_Element(element.prim, element.dim))
        elif isinstance(element, BuiltinBasis):
            out.append(_Element(element.prim, element.dim))
    return out


def determine_standardizations(
    b_in: Basis, b_out: Basis
) -> tuple[list[Standardization], list[Standardization]]:
    """Algorithm E6: standardizations (for ``b_in``) and
    destandardizations (for ``b_out``), with qubit offsets."""
    lstd: list[Standardization] = []
    rstd: list[Standardization] = []
    ldeque = _ranges(b_in)
    rdeque = _ranges(b_out)
    loffset = 0
    roffset = 0

    while ldeque and rdeque:
        left = ldeque.popleft()
        right = rdeque.popleft()
        if not left.is_padding and not right.is_padding and left.prim is right.prim:
            conditional = False
        else:
            conditional = True

        if left.dim == right.dim:
            if not left.is_padding:
                lstd.append(
                    Standardization(left.prim, loffset, left.dim, conditional)
                )
            if not right.is_padding:
                rstd.append(
                    Standardization(right.prim, roffset, right.dim, conditional)
                )
            loffset += left.dim
            roffset += right.dim
            continue

        if left.dim > right.dim:
            big, small = left, right
            bigdeque, big_std, small_std = ldeque, lstd, rstd
            big_offset, small_offset = loffset, roffset
        else:
            big, small = right, left
            bigdeque, big_std, small_std = rdeque, rstd, lstd
            big_offset, small_offset = roffset, loffset
        delta = big.dim - small.dim

        if not big.is_padding and big.prim.is_separable:
            if not small.is_padding:
                small_std.append(
                    Standardization(small.prim, small_offset, small.dim, conditional)
                )
            big_std.append(
                Standardization(big.prim, big_offset, small.dim, conditional)
            )
            bigdeque.appendleft(_Element(big.prim, delta))
        else:
            # Inseparable (or padding) big element: the whole element
            # (de)standardizes at once, and padding keeps the deques in
            # step (paper Fig. E14).
            if not small.is_padding:
                small_std.append(
                    Standardization(small.prim, small_offset, small.dim, True)
                )
            if not big.is_padding:
                big_std.append(
                    Standardization(big.prim, big_offset, big.dim, True)
                )
            bigdeque.appendleft(_Element(None, delta))

        loffset += small.dim
        roffset += small.dim

    return lstd, rstd
