"""Vector-phase synthesis (paper §6.3, Fig. 8).

After standardization, a phased basis vector corresponds to a std
eigenbit pattern; imparting (or removing) its phase is an X-conjugated
multi-controlled P(theta): X gates flip the eigenbit-0 positions so a
positive-control MCP fires exactly on the pattern.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.parameters import is_symbolic
from repro.qcircuit.circuit import CircuitGate


def phase_on_pattern(
    qubits: Sequence[int],
    pattern: Sequence[int],
    theta_degrees,
    extra_controls: Sequence[int] = (),
    extra_states: Sequence[int] = (),
) -> list[CircuitGate]:
    """Gates imparting ``exp(i theta)`` on the subspace where ``qubits``
    match ``pattern`` (and any ``extra_controls`` match their states).

    ``theta_degrees`` may be a symbolic
    :class:`repro.parameters.ParamExpr`; the degree→radian conversion
    then folds into the expression's coefficients and the emitted ``p``
    gate stays symbolic until ``CompileResult.bind``.
    """
    if is_symbolic(theta_degrees):
        theta = theta_degrees * (math.pi / 180.0)
    else:
        theta = math.radians(theta_degrees)
        if theta == 0.0:
            return []
    if not qubits:
        return []
    gates: list[CircuitGate] = []
    flips = [q for q, bit in zip(qubits, pattern) if bit == 0]
    for qubit in flips:
        gates.append(CircuitGate("x", (qubit,)))
    target = qubits[-1]
    controls = tuple(qubits[:-1]) + tuple(extra_controls)
    states = (1,) * (len(qubits) - 1) + tuple(extra_states)
    gates.append(
        CircuitGate("p", (target,), controls, (theta,), states)
    )
    for qubit in reversed(flips):
        gates.append(CircuitGate("x", (qubit,)))
    return gates
