"""Basis alignment (paper Appendix F, Algorithm E7).

Alignment rewrites a well-typed basis translation into a functionally
equivalent one in which respective basis elements pair up: equal
dimensions, and literal-with-literal / builtin-with-builtin.  Factoring
is preferred (it keeps permutations small); merging (Cartesian
products) is the fallback.

Elements are *standardized* first: primitive bases become ``std`` and
vector phases are stripped — standardization gates and phase gates are
synthesized separately (see :mod:`repro.synth.translation`), so the
aligned translation only drives the central permutation.
"""

from __future__ import annotations

from collections import deque

from repro.basis.basis import Basis, BasisElement
from repro.basis.builtin import BuiltinBasis
from repro.basis.factor import factor_prefix_ordered
from repro.basis.literal import BasisLiteral, full_literal
from repro.basis.primitive import PrimitiveBasis
from repro.errors import SynthesisError

#: Merging builds explicit Cartesian products; bound the blowup.
MAX_MERGE_DIM = 16


def _standardize_element(element: BasisElement) -> BasisElement:
    """Change the primitive basis to std and remove vector phases."""
    if isinstance(element, BuiltinBasis):
        return BuiltinBasis(PrimitiveBasis.STD, element.dim)
    return element.with_prim(PrimitiveBasis.STD).without_phases()


def _as_literal(element: BasisElement) -> BasisLiteral:
    if isinstance(element, BasisLiteral):
        return element
    if element.dim > MAX_MERGE_DIM:
        raise SynthesisError(
            f"refusing to expand {element} into a 2^{element.dim}-vector literal"
        )
    return full_literal(PrimitiveBasis.STD, element.dim)


def _merge(
    first: BasisElement, own_deque: deque[BasisElement]
) -> BasisLiteral:
    """Tensor the element with the next deque element (as literals)."""
    if not own_deque:
        raise SynthesisError("dimension mismatch while aligning bases")
    next_element = own_deque.popleft()
    merged = _as_literal(first).tensor(_as_literal(next_element))
    if merged.dim > MAX_MERGE_DIM:
        raise SynthesisError("merged basis literal is too large to synthesize")
    return merged


def align_translation(
    b_in: Basis, b_out: Basis
) -> list[tuple[BasisElement, BasisElement]]:
    """Algorithm E7: pair up the elements of a standardized translation.

    Returns a list of (input element, output element) pairs where each
    pair has equal dimension and both sides are literals or both are
    built-in ``std`` bases.
    """
    ldeque: deque[BasisElement] = deque(
        _standardize_element(e) for e in b_in.elements
    )
    rdeque: deque[BasisElement] = deque(
        _standardize_element(e) for e in b_out.elements
    )
    pairs: list[tuple[BasisElement, BasisElement]] = []

    while ldeque and rdeque:
        left = ldeque.popleft()
        right = rdeque.popleft()

        while left.dim != right.dim:
            if left.dim > right.dim:
                big, small, bigdeque = left, right, ldeque
                small_deque = rdeque
            else:
                big, small, bigdeque = right, left, rdeque
                small_deque = ldeque
            delta = big.dim - small.dim

            if isinstance(big, BuiltinBasis):
                # std[N] factors freely: peel off dim(small) qubits.
                factor: BasisElement = BuiltinBasis(PrimitiveBasis.STD, small.dim)
                if isinstance(small, BasisLiteral):
                    factor = _as_literal(factor)
                new_big = factor
                bigdeque.appendleft(BuiltinBasis(PrimitiveBasis.STD, delta))
            elif isinstance(big, BasisLiteral):
                factored = factor_prefix_ordered(big, small.dim)
                if factored is not None:
                    prefix, remainder = factored
                    if isinstance(small, BuiltinBasis):
                        small = _as_literal(small)
                    new_big = prefix
                    bigdeque.appendleft(remainder)
                else:
                    # Fall back to merging on the small side.
                    small = _merge(small, small_deque)
                    new_big = _as_literal(big)
            else:  # pragma: no cover - defensive
                raise SynthesisError(f"cannot align element {big}")

            if left.dim > right.dim:
                left, right = new_big, small
            else:
                left, right = small, new_big

        # Equal dimensions: unify representations.
        if isinstance(left, BuiltinBasis) and isinstance(right, BasisLiteral):
            left = _as_literal(left)
        elif isinstance(right, BuiltinBasis) and isinstance(left, BasisLiteral):
            right = _as_literal(right)
        pairs.append((left, right))

    if ldeque or rdeque:
        raise SynthesisError("dimension mismatch while aligning bases")
    return pairs
