"""QFT and inverse-QFT circuits for the Fourier basis (paper §6.3).

Standardizing ``fourier[N]`` applies the N-qubit inverse quantum
Fourier transform; destandardizing applies the QFT.  The convention
matches qubit 0 being the most significant bit: ``QFT |k> = f_k`` where
``f_k = 2^{-N/2} sum_x exp(2 pi i k x / 2^N) |x>``.
"""

from __future__ import annotations

import math

from repro.qcircuit.circuit import CircuitGate


def qft_gates(qubits: list[int], include_swaps: bool = True) -> list[CircuitGate]:
    """The quantum Fourier transform on the given qubit line indices."""
    n = len(qubits)
    gates: list[CircuitGate] = []
    for i in range(n):
        gates.append(CircuitGate("h", (qubits[i],)))
        for j in range(i + 1, n):
            angle = math.pi / (2 ** (j - i))
            gates.append(
                CircuitGate("p", (qubits[i],), (qubits[j],), (angle,))
            )
    if include_swaps:
        for i in range(n // 2):
            gates.append(CircuitGate("swap", (qubits[i], qubits[n - 1 - i])))
    return gates


def iqft_gates(qubits: list[int], include_swaps: bool = True) -> list[CircuitGate]:
    """The inverse QFT: the QFT's gates reversed and daggered."""
    return [gate.dagger() for gate in reversed(qft_gates(qubits, include_swaps))]
