"""Full basis-translation circuit synthesis (paper §6.3, Fig. 6).

The synthesized circuit reads left to right::

    standardize (unconditional) | standardize (conditional) |
    vector phases (left, removed) | permute std basis vectors |
    vector phases (right, added) | destandardize (conditional) |
    destandardize (unconditional)

Predicates — aligned element pairs that are identical single-vector
literals on both sides — control every conditional section.  Span
equivalence checking guarantees predicates always correspond to
unconditional standardizations, so their control values are plain std
eigenbits once the outer unconditional layer has run (paper Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.basis.basis import Basis
from repro.basis.builtin import BuiltinBasis
from repro.basis.literal import BasisLiteral
from repro.basis.primitive import PrimitiveBasis
from repro.errors import SynthesisError
from repro.qcircuit.circuit import CircuitGate
from repro.synth.align import align_translation
from repro.synth.permute import (
    permutation_from_vector_map,
    synthesize_permutation,
)
from repro.synth.phases import phase_on_pattern
from repro.synth.qft import iqft_gates, qft_gates
from repro.synth.standardize import Standardization, determine_standardizations


#: Cap on the number of controlled copies emitted when expanding
#: multi-vector predicates into per-pattern controls.
MAX_PREDICATE_PRODUCT = 128


@dataclass(frozen=True)
class _Predicate:
    """A predicate: a qubit range whose state must lie in a pattern set.

    Any aligned pair that does not fully span constrains the rest of
    the circuit to act only when its qubits hold one of its std
    patterns.  Crucially, a well-typed pair's pattern *set* is
    preserved by its own permutation, so these controls are stable
    across the whole synthesized circuit.
    """

    offset: int
    patterns: tuple[tuple[int, ...], ...]

    @property
    def dim(self) -> int:
        return len(self.patterns[0])

    @property
    def qubits(self) -> tuple[int, ...]:
        return tuple(range(self.offset, self.offset + self.dim))


def _standardization_gates(
    std: Standardization, inverse: bool
) -> list[CircuitGate]:
    """Gates translating ``std.prim -> std`` (or the inverse)."""
    qubits = list(range(std.offset, std.offset + std.dim))
    if std.prim is PrimitiveBasis.STD:
        return []
    if std.prim is PrimitiveBasis.PM:
        return [CircuitGate("h", (q,)) for q in qubits]
    if std.prim is PrimitiveBasis.IJ:
        gates = []
        for q in qubits:
            if not inverse:
                gates += [CircuitGate("sdg", (q,)), CircuitGate("h", (q,))]
            else:
                gates += [CircuitGate("h", (q,)), CircuitGate("s", (q,))]
        return gates
    if std.prim is PrimitiveBasis.FOURIER:
        return qft_gates(qubits) if inverse else iqft_gates(qubits)
    raise SynthesisError(f"cannot standardize {std.prim}")


def _controlled(
    gates: list[CircuitGate], predicates: list[_Predicate]
) -> list[CircuitGate]:
    """Control gates on membership in every predicate's pattern set.

    Multi-pattern predicates expand to one controlled copy per pattern
    combination; the patterns are mutually exclusive, so the sequence
    of controlled copies equals a single span-membership control.
    """
    if not predicates:
        return gates
    combos = _predicate_combos(predicates)
    out = []
    for gate in gates:
        for controls, states in combos:
            out.append(gate.with_extra_controls(controls, states))
    return out


def _collect_predicates(
    pairs: list[tuple], offsets: list[int]
) -> list[_Predicate]:
    """Every non-fully-spanning aligned pair is a predicate."""
    predicates = []
    for (left, right), offset in zip(pairs, offsets):
        if not isinstance(left, BasisLiteral) or not isinstance(right, BasisLiteral):
            continue
        if left.fully_spans:
            continue
        predicates.append(
            _Predicate(offset, tuple(vec.eigenbits for vec in left.vectors))
        )
    return predicates


def _excluding(
    predicates: list[_Predicate], offset: int
) -> list[_Predicate]:
    """Predicates other than the one at ``offset`` (a pair must not be
    controlled on itself)."""
    return [p for p in predicates if p.offset != offset]


def _predicate_combos(
    predicates: list[_Predicate],
) -> list[tuple[list[int], list[int]]]:
    """All (controls, states) combinations across predicate patterns."""
    combos: list[tuple[list[int], list[int]]] = [([], [])]
    for predicate in predicates:
        combos = [
            (controls + list(predicate.qubits), states + list(pattern))
            for controls, states in combos
            for pattern in predicate.patterns
        ]
        if len(combos) > MAX_PREDICATE_PRODUCT:
            raise SynthesisError(
                "predicate pattern product too large to synthesize"
            )
    return combos


def _phase_gates(
    basis: Basis,
    sign: float,
    predicates: list[_Predicate],
) -> list[CircuitGate]:
    """MCP gates removing (sign=-1) or adding (sign=+1) vector phases."""
    gates: list[CircuitGate] = []
    for element, start, stop in basis.element_ranges():
        if not isinstance(element, BasisLiteral):
            continue
        own_range = set(range(start, stop))
        applicable = [
            predicate
            for predicate in predicates
            if not own_range & set(predicate.qubits)
        ]
        combos = _predicate_combos(applicable)
        for vector in element.vectors:
            if not vector.has_phase:
                continue
            for controls, states in combos:
                gates += phase_on_pattern(
                    list(range(start, stop)),
                    vector.eigenbits,
                    sign * vector.phase,
                    controls,
                    states,
                )
    return gates


def synthesize_basis_translation(
    b_in: Basis, b_out: Basis
) -> list[CircuitGate]:
    """Synthesize the circuit for ``b_in >> b_out`` on qubits 0..dim-1.

    The translation must already be well-typed (span-equivalent); this
    function re-checks only what synthesis itself relies on.
    """
    if b_in.dim != b_out.dim:
        raise SynthesisError("basis translation sides differ in dimension")

    lstd, rstd = determine_standardizations(b_in, b_out)
    pairs = align_translation(b_in, b_out)
    offsets = []
    position = 0
    for left, _right in pairs:
        offsets.append(position)
        position += left.dim
    predicates = _collect_predicates(pairs, offsets)

    gates: list[CircuitGate] = []

    # 1. Unconditional standardization (uncontrolled: it is undone by
    #    the matching unconditional destandardization, conjugating the
    #    rest of the circuit).
    for std in lstd:
        if not std.conditional:
            gates += _standardization_gates(std, inverse=False)

    # 2. Conditional standardization, controlled on the predicates.
    for std in lstd:
        if std.conditional:
            gates += _controlled(
                _standardization_gates(std, inverse=False), predicates
            )

    # 3. Left vector phases, removed.
    gates += _phase_gates(b_in, -1.0, predicates)

    # 4. The central permutation of std basis vectors, per aligned pair.
    #    Each pair is controlled on every *other* pair's pattern set.
    for (left, right), offset in zip(pairs, offsets):
        if left == right:
            continue
        if isinstance(left, BuiltinBasis) or isinstance(right, BuiltinBasis):
            continue  # Both std builtins: identity.
        in_bits = [vec.eigenbits for vec in left.vectors]
        out_bits = [vec.eigenbits for vec in right.vectors]
        table = permutation_from_vector_map(in_bits, out_bits, left.dim)
        if table == list(range(len(table))):
            continue
        local = synthesize_permutation(table, left.dim)
        shifted = [gate.shifted(offset) for gate in local]
        gates += _controlled(shifted, _excluding(predicates, offset))

    # 5. Right vector phases, added.
    gates += _phase_gates(b_out, +1.0, predicates)

    # 6. Conditional destandardization.
    for std in rstd:
        if std.conditional:
            gates += _controlled(
                _standardization_gates(std, inverse=True), predicates
            )

    # 7. Unconditional destandardization.
    for std in rstd:
        if not std.conditional:
            gates += _standardization_gates(std, inverse=True)

    return gates
