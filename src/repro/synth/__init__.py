"""Circuit synthesis for basis translations (paper §6.3, Apps. E and F).

The synthesized circuit has the structure of paper Fig. 6::

    unconditional standardize | conditional standardize |
    left vector phases (removed) | permute std basis vectors |
    right vector phases (added) | conditional destandardize |
    unconditional destandardize

* :mod:`repro.synth.standardize` — Algorithm E6 (with padding for
  inseparable bases like ``fourier``).
* :mod:`repro.synth.align` — Algorithm E7 basis alignment.
* :mod:`repro.synth.permute` — transformation-based reversible
  synthesis (the tweedledum substitute, refs [33, 50]).
* :mod:`repro.synth.phases` — X-conjugated multi-controlled P(theta)
  for vector phases.
* :mod:`repro.synth.qft` — QFT/IQFT circuits for the Fourier basis.
* :mod:`repro.synth.translation` — assembles the full pipeline.
"""

from repro.synth.translation import synthesize_basis_translation
from repro.synth.permute import synthesize_permutation
from repro.synth.standardize import determine_standardizations, Standardization
from repro.synth.align import align_translation

__all__ = [
    "Standardization",
    "align_translation",
    "determine_standardizations",
    "synthesize_basis_translation",
    "synthesize_permutation",
]
