"""Statevector simulation (the qir-runner substitute, paper §7).

Execution is organized around pluggable backends — see
:mod:`repro.sim.backend` and docs/simulators.md.
"""

# Import order matters: statevector (and through it repro.qcircuit.fusion)
# must initialize before backend/density, which build on its primitives.
from repro.qcircuit.fusion import FusedGate, fuse_single_qubit_gates
from repro.sim.kernels import (
    active_kernel_name,
    available_kernels,
    current_kernel_selection,
    get_kernel,
    numba_available,
    use_kernel,
)
from repro.sim.statevector import (
    StatevectorSimulator,
    apply_gates_to_state,
    apply_matrix_inplace,
    gate_matrix,
    run_circuit,
    unitary_of_gates,
)
from repro.sim.batched import (
    MAX_BATCH_BYTES,
    BatchedStatevector,
    batch_chunk_size,
    batched_run,
)
from repro.sim.backend import (
    DEFAULT_BACKEND,
    InterpreterBackend,
    RunInfo,
    SimBackend,
    VectorizedStatevectorBackend,
    available_backends,
    get_backend,
    register_backend,
    run_circuit_with_info,
    sample_measurement_probabilities,
    terminal_measurement_plan,
)
from repro.sim.density import (
    MAX_DENSITY_QUBITS,
    DensityMatrixBackend,
    DensityMatrixSimulator,
    controlled_matrix,
)
from repro.sim.interpreter import ModuleInterpreter, interpret_module

__all__ = [
    "DEFAULT_BACKEND",
    "MAX_BATCH_BYTES",
    "MAX_DENSITY_QUBITS",
    "BatchedStatevector",
    "DensityMatrixBackend",
    "DensityMatrixSimulator",
    "FusedGate",
    "InterpreterBackend",
    "ModuleInterpreter",
    "RunInfo",
    "SimBackend",
    "StatevectorSimulator",
    "VectorizedStatevectorBackend",
    "active_kernel_name",
    "apply_gates_to_state",
    "apply_matrix_inplace",
    "available_backends",
    "available_kernels",
    "batch_chunk_size",
    "batched_run",
    "controlled_matrix",
    "current_kernel_selection",
    "fuse_single_qubit_gates",
    "gate_matrix",
    "get_backend",
    "get_kernel",
    "interpret_module",
    "numba_available",
    "register_backend",
    "use_kernel",
    "run_circuit",
    "run_circuit_with_info",
    "sample_measurement_probabilities",
    "terminal_measurement_plan",
    "unitary_of_gates",
]
