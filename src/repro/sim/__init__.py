"""Statevector simulation (the qir-runner substitute, paper §7)."""

from repro.sim.statevector import (
    StatevectorSimulator,
    run_circuit,
    unitary_of_gates,
    apply_gates_to_state,
)
from repro.sim.interpreter import ModuleInterpreter, interpret_module

__all__ = [
    "ModuleInterpreter",
    "StatevectorSimulator",
    "apply_gates_to_state",
    "interpret_module",
    "run_circuit",
    "unitary_of_gates",
]
