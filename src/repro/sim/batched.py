"""Shot-batched statevector trajectories for non-terminal circuits.

The terminal-measurement fast path (:mod:`repro.sim.backend`) cannot
touch circuits with mid-circuit measurement, classically conditioned
gates, or mid-evolution reset — teleportation, repeat-until-success
patterns, and the qubit-reuse layouts of Fig. 12 — because each shot's
evolution depends on its own measurement outcomes.  Historically those
circuits dropped to a Python loop doing one full statevector evolution
per shot (``RunInfo.evolutions == shots``), the single largest
remaining hot path of the shot runner.

This module executes *all shots simultaneously* instead.  The state is
one ``(shots, 2, 2, ..., 2)`` complex array — axis 0 is the shot, axis
``1 + q`` is qubit ``q`` — and:

- gates apply via one :func:`~repro.sim.statevector.apply_matrix_inplace`
  sweep over the whole batch (the shot axis rides along in the matmul's
  column dimension);
- a :class:`~repro.qcircuit.circuit.Measurement` computes every shot's
  ``p(1)`` with one einsum, draws all outcomes from a single
  ``rng.random(shots)`` call, zeroes the complementary slice per shot,
  and renormalizes each row;
- classically conditioned gates apply the unitary only to the
  boolean-masked sub-batch whose condition bit matches;
- :class:`~repro.qcircuit.circuit.Reset` composes a measurement with a
  masked X on the shots that collapsed to |1>;
- a Kraus channel (noisy runs — docs/noise.md) is unraveled with **one
  masked draw per application**: per-shot operator probabilities
  ``||K_i |psi>||^2``, a single ``rng.random(shots)`` selection, and
  one masked sub-batch sweep per operator (:meth:`apply_kraus`).

Memory envelope: the batch array holds ``shots x 2^n`` complex128
amplitudes (16 bytes each).  When that exceeds
:data:`MAX_BATCH_BYTES`, the shots are split into chunks and each chunk
runs as its own batched sweep — ``RunInfo.evolutions`` reports the
number of sweeps honestly (1 for teleportation at 4096 shots; more
only for very wide circuits at very high shot counts).

The per-shot RNG streams differ from the ``interpreter`` backend's
``seed + shot`` convention (here one ``Generator(seed)`` drives every
measurement of the batch), so results agree in distribution, not bit
for bit; the interpreter backend remains the bit-exact per-shot
reference.  See docs/simulators.md ("Batched trajectory engine").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.qcircuit.fusion import FusedUnitary
from repro.sim.statevector import (
    apply_matrix_inplace,
    control_sliced_view,
    gate_matrix,
)

#: Memory envelope for one batched state array, in bytes.  A batch of
#: ``shots`` trajectories on ``n`` qubits holds ``shots * 2^n``
#: complex128 amplitudes; shot counts that would exceed this envelope
#: are chunked into multiple batched sweeps.
MAX_BATCH_BYTES = 1 << 28  # 256 MiB

_BYTES_PER_AMPLITUDE = 16  # complex128

_SWEEPS = _metrics.counter(
    "repro_sim_sweeps_total",
    "Simulator sweeps by engine (batched evolutions, fast-path samples, "
    "interpreter trajectory loops)",
    labels=("engine",),
)


def batch_chunk_size(
    num_qubits: int, max_batch_bytes: int = MAX_BATCH_BYTES
) -> int:
    """Largest shot count whose batch state fits the memory envelope."""
    dim = 2 ** max(num_qubits, 1)
    return max(1, max_batch_bytes // (dim * _BYTES_PER_AMPLITUDE))


class BatchedStatevector:
    """``shots`` statevector trajectories evolved as one array.

    The dual of :class:`~repro.sim.statevector.StatevectorSimulator`
    with a leading shot axis: same qubit-ordering convention (qubit 0
    is the leftmost ket bit), same instruction semantics, but every
    operation is vectorized across the batch.  ``bits`` is the
    ``(shots, num_bits)`` classical register.
    """

    def __init__(
        self,
        shots: int,
        num_qubits: int,
        num_bits: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_qubits > 24:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the dense-simulation limit"
            )
        if shots < 1:
            raise SimulationError("a batch needs at least one shot")
        self.shots = shots
        self.num_qubits = num_qubits
        axes = max(num_qubits, 1)
        self.state = np.zeros((shots,) + (2,) * axes, dtype=complex)
        self.state[(slice(None),) + (0,) * axes] = 1.0
        self.bits = np.zeros((shots, num_bits), dtype=np.int64)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------
    # Gate application.
    # ------------------------------------------------------------------
    def apply_gate(self, gate: CircuitGate) -> None:
        matrix = gate_matrix(gate.name, gate.params)
        if gate.condition is None:
            self._apply(self.state, matrix, gate)
            return
        bit, required = gate.condition
        self._apply_to_masked(self.bits[:, bit] == required, matrix, gate)

    def _apply(
        self, states: np.ndarray, matrix: np.ndarray, gate: CircuitGate
    ) -> None:
        """Apply ``matrix`` on ``gate``'s qubits across a batch array."""
        # axis_offset=1: the shot axis 0 always survives the control
        # slicing; qubit q lives on axis 1 + q.
        view, axes = control_sliced_view(
            states, gate.targets, gate.controls, gate.ctrl_states,
            axis_offset=1,
        )
        apply_matrix_inplace(view, matrix, axes)

    def _apply_to_masked(
        self, mask: np.ndarray, matrix: np.ndarray, gate: CircuitGate
    ) -> None:
        """Apply ``matrix`` only to the trajectories ``mask`` selects.

        Fancy indexing copies the selected trajectories out, so the
        sub-batch must be scattered back after the gate.
        """
        if not mask.any():
            return
        if mask.all():
            self._apply(self.state, matrix, gate)
            return
        sub = self.state[mask]
        self._apply(sub, matrix, gate)
        self.state[mask] = sub

    # ------------------------------------------------------------------
    # Non-unitary operations.
    # ------------------------------------------------------------------
    def probability_one(self, qubit: int) -> np.ndarray:
        """Each shot's probability that ``qubit`` reads 1."""
        index: list = [slice(None)] * self.state.ndim
        index[1 + qubit] = 1
        flat = self.state[tuple(index)].reshape(self.shots, -1)
        return np.einsum("si,si->s", flat, flat.conj()).real

    def measure(self, qubit: int) -> np.ndarray:
        """Measure ``qubit`` on every shot; returns the outcome vector.

        One ``rng.random(shots)`` draw decides all outcomes (the same
        ``outcome = random() < p(1)`` convention as the single-shot
        simulator); the complementary slice of each shot is zeroed and
        each row renormalized by its own outcome probability.
        """
        p_one = self.probability_one(qubit)
        outcomes = (self.rng.random(self.shots) < p_one).astype(np.int64)
        ones = outcomes == 1

        index: list = [slice(None)] * self.state.ndim
        index[1 + qubit] = 0
        self.state[tuple(index)][ones] = 0.0
        index[1 + qubit] = 1
        self.state[tuple(index)][~ones] = 0.0

        # outcome 1 is only drawn when p(1) > 0, and outcome 0 only
        # when random() >= p(1) (so p(0) > 0): both branches are
        # strictly positive, the batched analogue of _project's guard.
        probability = np.where(ones, p_one, 1.0 - p_one)
        if np.any(probability <= 0.0):
            raise SimulationError("projection onto zero-probability outcome")
        norm = (1.0 / np.sqrt(probability)).reshape(
            (self.shots,) + (1,) * (self.state.ndim - 1)
        )
        self.state *= norm
        return outcomes

    def reset(self, qubit: int) -> None:
        """Reset ``qubit`` to |0> on every shot: measure + masked X."""
        outcomes = self.measure(qubit)
        self._apply_to_masked(
            outcomes == 1, gate_matrix("x"), CircuitGate("x", (qubit,))
        )

    # ------------------------------------------------------------------
    # Stochastic Kraus unraveling (noise).
    # ------------------------------------------------------------------
    def apply_kraus(
        self,
        operators,
        qubits,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Unravel one Kraus channel across the batch, in one draw.

        Each shot independently selects operator ``i`` with probability
        ``||K_i |psi>||^2`` and collapses to ``K_i |psi> / ||...||`` —
        the trajectory unraveling whose shot-average reproduces the
        channel's exact density-matrix action.  The whole batch is
        served by **one** ``rng.random(shots)`` draw plus one masked
        sweep per Kraus operator, mirroring how measurement is batched.
        ``mask`` restricts the channel to a sub-batch (the shots whose
        classical condition fired alongside the noisy gate).
        """
        axes = tuple(1 + q for q in qubits)
        if mask is None:
            self._kraus_on_states(self.state, operators, axes)
            return
        if not mask.any():
            return
        if mask.all():
            self._kraus_on_states(self.state, operators, axes)
            return
        sub = self.state[mask]
        self._kraus_on_states(sub, operators, axes)
        self.state[mask] = sub

    def _kraus_on_states(self, states, operators, axes) -> None:
        count = states.shape[0]
        if len(operators) == 1:
            # One operator: apply and renormalize per row (completeness
            # makes it norm-preserving up to float drift).
            apply_matrix_inplace(states, operators[0], axes)
            return
        # Per-shot selection probabilities ||K_i |psi>||^2, computed by
        # one buffered sweep per operator.
        probabilities = np.empty((len(operators), count))
        buffer = np.empty_like(states)
        for index, op in enumerate(operators):
            buffer[...] = states
            apply_matrix_inplace(buffer, op, axes)
            flat = buffer.reshape(count, -1)
            probabilities[index] = np.einsum(
                "si,si->s", flat, flat.conj()
            ).real
        totals = probabilities.sum(axis=0)  # ~1.0 by CPTP
        if np.any(totals <= 0.0):
            raise SimulationError(
                "Kraus probabilities vanished (non-normalized state?)"
            )
        draws = self.rng.random(count) * totals
        cumulative = np.cumsum(probabilities, axis=0)
        chosen = np.minimum(
            (draws[None, :] >= cumulative).sum(axis=0),
            len(operators) - 1,
        )
        for index, op in enumerate(operators):
            mask = chosen == index
            if not mask.any():
                continue
            sub = states[mask]
            apply_matrix_inplace(sub, op, axes)
            norm = np.sqrt(probabilities[index, mask])
            sub /= norm.reshape((-1,) + (1,) * (sub.ndim - 1))
            states[mask] = sub

    def _record_measurement(
        self, inst: Measurement, noise_model, stats
    ) -> None:
        """Measure, then corrupt the *recorded* bits through the
        qubit's readout confusion matrix (one vectorized flip draw)."""
        outcomes = self.measure(inst.qubit)
        error = (
            noise_model.readout_error_for(inst.qubit)
            if noise_model is not None
            else None
        )
        if error is not None:
            flip_probability = np.where(
                outcomes == 1, error.p10, error.p01
            )
            flips = self.rng.random(self.shots) < flip_probability
            outcomes = outcomes ^ flips.astype(np.int64)
            if stats is not None:
                stats.readout_applications += 1
        self.bits[:, inst.bit] = outcomes

    # ------------------------------------------------------------------
    # Whole-circuit execution.
    # ------------------------------------------------------------------
    def run(
        self, circuit: Circuit, noise_model=None, stats=None
    ) -> np.ndarray:
        """Execute the circuit; returns the (shots, num_bits) register.

        ``noise_model`` unravels each attached channel right after its
        gate (restricted to the fired sub-batch for conditioned gates)
        and corrupts recorded measurement bits per the model's readout
        errors; ``stats`` (a :class:`repro.noise.NoiseStats`)
        accumulates the per-sweep noise-event counts.
        """
        for inst in circuit.instructions:
            if isinstance(inst, CircuitGate):
                self.apply_gate(inst)
                if noise_model is not None:
                    applications = noise_model.channels_for(inst)
                    if applications:
                        mask = None
                        fired = True
                        if inst.condition is not None:
                            bit, required = inst.condition
                            mask = self.bits[:, bit] == required
                            # A conditioned gate that fired on no shot
                            # applies no noise: don't count an event
                            # (matching the interpreter's fired guard).
                            fired = bool(mask.any())
                        for channel, qubits in applications:
                            self.apply_kraus(
                                channel.operators, qubits, mask=mask
                            )
                            if stats is not None and fired:
                                stats.channel_applications += 1
            elif isinstance(inst, FusedUnitary):
                # Fused blocks are unconditioned unitaries; the shot
                # axis rides along exactly as for plain gates.  Noise
                # models attach channels by gate name, so fused blocks
                # carry none (noisy runs execute the unfused circuit).
                axes = tuple(1 + q for q in inst.targets)
                apply_matrix_inplace(self.state, inst.matrix, axes)
            elif isinstance(inst, Measurement):
                self._record_measurement(inst, noise_model, stats)
            elif isinstance(inst, Reset):
                self.reset(inst.qubit)
            else:
                raise SimulationError(f"unknown instruction {inst!r}")
        return self.bits


def batched_run(
    circuit: Circuit,
    shots: int,
    seed: int = 0,
    max_batch_bytes: int = MAX_BATCH_BYTES,
    noise_model=None,
    stats=None,
) -> tuple[list[tuple[int, ...]], int]:
    """Run ``shots`` trajectories batched; returns ``(results, sweeps)``.

    ``sweeps`` is the number of batched evolutions performed: 1 when
    all shots fit the :data:`MAX_BATCH_BYTES` envelope, more when the
    shot count had to be chunked.  One ``Generator(seed)`` drives every
    chunk in order, so results are deterministic per
    ``(circuit, shots, seed, max_batch_bytes)``.

    ``noise_model`` unravels the model's channels stochastically (one
    masked Kraus draw per channel application per sweep — see
    :meth:`BatchedStatevector.apply_kraus`); ``stats`` (a
    :class:`repro.noise.NoiseStats`) accumulates noise-event counts
    across chunks.
    """
    output = list(circuit.output_bits or range(circuit.num_bits))
    rng = np.random.default_rng(seed)
    chunk = batch_chunk_size(circuit.num_qubits, max_batch_bytes)
    results: list[tuple[int, ...]] = []
    sweeps = 0
    done = 0
    while done < shots:
        size = min(chunk, shots - done)
        with _trace.span(
            "sim.sweep",
            engine="batched", shots=size, qubits=circuit.num_qubits,
        ):
            engine = BatchedStatevector(
                size, circuit.num_qubits, circuit.num_bits, rng
            )
            bits = engine.run(circuit, noise_model=noise_model, stats=stats)
        _SWEEPS.inc(engine="batched")
        selected = bits[:, output]
        results.extend(
            tuple(int(bit) for bit in row) for row in selected
        )
        sweeps += 1
        done += size
    return results, sweeps
