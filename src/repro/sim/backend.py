"""Pluggable simulation backends (the qir-runner substitute, paper §7).

A :class:`SimBackend` turns a flat :class:`~repro.qcircuit.circuit.Circuit`
plus a shot count into sampled output bits.  Backends are registered by
name (:func:`register_backend`) and looked up by every execution entry
point — ``run_circuit``, ``simulate_kernel``, ``interpret_module``, and
the evaluation harness — so a new simulation strategy plugs in without
touching any of them.  See docs/simulators.md for the full guide.

Three backends ship in-tree:

``"interpreter"``
    One independent statevector trajectory per shot, seeded
    ``seed + shot``.  O(shots x gates x 2^n), but handles every circuit
    and reproduces the repository's historical shot sequences exactly.

``"statevector"``
    The vectorized sampler.  For *terminal-measurement* circuits (all
    measurements after the last gate, no classical control, no reset
    before a measurement) it evolves the state **once** — through a
    gate-fused, matrix-cached evolution — and draws all shots from
    |psi|^2 with a single ``np.random.Generator.choice`` call, making
    shot count a near-constant cost.  Circuits with genuine mid-circuit
    measurement, classically conditioned gates, or mid-evolution reset
    — and every run under a noise model, whose per-shot Kraus draws
    rule out a shared evolution — run on the **batched trajectory
    engine** (:mod:`repro.sim.batched`): all shots evolve
    simultaneously as one ``(shots, 2, ..., 2)`` array, so
    teleportation at 4096 shots is one batched sweep instead of 4096
    Python evolutions.

``"density_matrix"``
    The exact noise reference (:mod:`repro.sim.density`): rho evolves
    through gates and exact Kraus sums (4^n amplitudes, <= 12 qubits),
    one evolution regardless of shot count.  See docs/noise.md.

Every backend takes an optional ``noise_model=``
(:class:`repro.noise.NoiseModel`) attaching Kraus channels per gate
and readout confusion per measured qubit.

Qubit-ordering convention (shared with the simulator): qubit 0 is the
*leftmost* ket bit, so basis-state index ``x`` has qubit ``q`` equal to
bit ``(x >> (n - 1 - q)) & 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.qcircuit.fusion import (
    FusedUnitary,
    fuse_single_qubit_gates,
    fused_gate_savings,
)
from repro.sim.batched import batched_run
from repro.sim.kernels import active_kernel_name
from repro.sim.statevector import StatevectorSimulator

# Get-or-create: same series repro.sim.batched increments for its
# batched sweeps; this module adds the fast-path and interpreter ones.
_SWEEPS = _metrics.counter(
    "repro_sim_sweeps_total",
    "Simulator sweeps by engine (batched evolutions, fast-path samples, "
    "interpreter trajectory loops)",
    labels=("engine",),
)

#: The one default-backend decision for the whole execution layer: every
#: entry point — ``run_circuit``, ``run_circuit_with_info``,
#: ``simulate_kernel`` / ``kernel()``, and ``interpret_module`` —
#: resolves ``backend=None`` here (via :func:`get_backend`), so changing
#: this name (or registering a replacement backend under it) retargets
#: all of them at once.
DEFAULT_BACKEND = "statevector"


@dataclass(frozen=True)
class RunInfo:
    """Observability record for one :meth:`SimBackend.run_with_info`.

    ``evolutions`` counts full statevector evolution sweeps performed —
    the dominant cost.  The terminal-measurement fast path does exactly
    one regardless of shot count; the batched trajectory engine does
    one *batched* sweep per memory-envelope chunk (usually 1 — see
    :data:`repro.sim.batched.MAX_BATCH_BYTES`); per-shot trajectory
    execution does ``shots``; the exact density-matrix backend reports
    1 (one rho evolution serves every shot).  ``batched`` is True when
    the batched engine ran (so an ``evolutions`` of 1 means one sweep
    over all shots at once, not one single-shot evolution).
    ``fused_ops`` is the post-fusion evolution step count on the fast
    path (``None`` otherwise).

    ``channel_applications`` / ``readout_applications`` count noise
    events the engine actually performed; the granularity differs per
    engine (and, on the density backend, per counter) — see
    :class:`repro.noise.NoiseStats` for the exact semantics.  Both are
    0 on noiseless runs.

    ``gates_fused`` counts gates eliminated by the compile-time fusion
    pass in the circuit this run executed (0 for unfused circuits);
    ``kernel`` records which apply-kernel performed the matrix sweeps
    (see :mod:`repro.sim.kernels` and docs/performance.md).

    ``workers`` / ``chunks`` record how the run was sharded: both 1
    for an ordinary single-process run; the parallel shot executor
    (:mod:`repro.exec`) merges its per-chunk records via
    :meth:`merge` and fills them in.  ``compile_cache`` is the compile
    provenance when the run went through ``simulate_kernel_with_info``
    — ``"compiled"``, ``"memory"``, or ``"disk"``
    (:attr:`repro.pipeline.CompileResult.provenance`); ``None`` for
    circuit-level runs that never touched the compiler.

    ``retries`` / ``faults_injected`` / ``degraded`` are the
    robustness counters filled in by the fault-tolerant dispatch path
    (:mod:`repro.exec.retry`): chunk attempts beyond the first, fault
    injections the run absorbed, and whether the dispatcher fell back
    to serial in-process execution after repeated pool breakage.  All
    zero/False on the ordinary path.
    """

    backend: str
    shots: int
    evolutions: int
    fast_path: bool
    batched: bool = False
    fused_ops: Optional[int] = None
    channel_applications: int = 0
    readout_applications: int = 0
    gates_fused: int = 0
    kernel: Optional[str] = None
    workers: int = 1
    chunks: int = 1
    compile_cache: Optional[str] = None
    retries: int = 0
    faults_injected: int = 0
    degraded: bool = False

    @staticmethod
    def merge(
        infos: "Sequence[RunInfo]", workers: Optional[int] = None
    ) -> "RunInfo":
        """Combine per-chunk records of one sharded run into one.

        Additive counters (``shots``, ``evolutions``,
        ``channel_applications``, ``readout_applications``,
        ``gates_fused``, ``fused_ops``, ``chunks``) sum exactly;
        ``fast_path`` holds only if every chunk took it, ``batched`` if
        any did; ``fused_ops`` stays ``None`` unless every chunk
        reported it.  All chunks must come from one backend; a mix of
        apply-kernels is recorded as ``"mixed"``.  ``workers`` defaults
        to the max the inputs carry.

        The robustness counters (``retries``, ``faults_injected``,
        ``degraded``) are read with ``getattr`` defaults: a
        :class:`RunInfo` unpickled from an artifact written before the
        counters existed (an old persistent-cache entry surviving a
        partial invalidation) merges as zero rather than crashing the
        telemetry path.
        """
        infos = list(infos)
        if not infos:
            raise SimulationError("RunInfo.merge needs at least one record")
        backends = {info.backend for info in infos}
        if len(backends) > 1:
            raise SimulationError(
                f"cannot merge RunInfo across backends: {sorted(backends)}"
            )
        kernels = {info.kernel for info in infos}
        fused_ops = (
            sum(info.fused_ops for info in infos)
            if all(info.fused_ops is not None for info in infos)
            else None
        )
        provenances = {info.compile_cache for info in infos}
        return RunInfo(
            backend=infos[0].backend,
            shots=sum(info.shots for info in infos),
            evolutions=sum(info.evolutions for info in infos),
            fast_path=all(info.fast_path for info in infos),
            batched=any(info.batched for info in infos),
            fused_ops=fused_ops,
            channel_applications=sum(
                info.channel_applications for info in infos
            ),
            readout_applications=sum(
                info.readout_applications for info in infos
            ),
            gates_fused=sum(info.gates_fused for info in infos),
            kernel=kernels.pop() if len(kernels) == 1 else "mixed",
            workers=(
                workers
                if workers is not None
                else max(info.workers for info in infos)
            ),
            chunks=sum(info.chunks for info in infos),
            compile_cache=(
                provenances.pop() if len(provenances) == 1 else None
            ),
            retries=sum(getattr(info, "retries", 0) for info in infos),
            faults_injected=sum(
                getattr(info, "faults_injected", 0) for info in infos
            ),
            degraded=any(
                getattr(info, "degraded", False) for info in infos
            ),
        )


class SimBackend:
    """Protocol for simulation backends.

    Subclasses implement :meth:`run_with_info`; :meth:`run` and
    :meth:`make_simulator` have default implementations.  Instances
    must be stateless across calls (one backend object may serve many
    threads of the evaluation harness).
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def run(
        self,
        circuit: Circuit,
        shots: int = 1,
        seed: int = 0,
        noise_model=None,
    ) -> list[tuple[int, ...]]:
        """Sample ``shots`` output-bit tuples from ``circuit``.

        ``noise_model`` is an optional :class:`repro.noise.NoiseModel`;
        backends that cannot execute under noise must raise
        :class:`~repro.errors.SimulationError` rather than silently
        ignore it.
        """
        if noise_model is None:
            results, _ = self.run_with_info(circuit, shots, seed)
        else:
            results, _ = self.run_with_info(
                circuit, shots, seed, noise_model=noise_model
            )
        return results

    def run_with_info(
        self,
        circuit: Circuit,
        shots: int = 1,
        seed: int = 0,
        noise_model=None,
    ) -> tuple[list[tuple[int, ...]], RunInfo]:
        """Like :meth:`run`, also returning a :class:`RunInfo`."""
        raise NotImplementedError

    def make_simulator(
        self, num_qubits: int, num_bits: int = 0, seed: int = 0
    ) -> StatevectorSimulator:
        """A step-by-step simulator for op-at-a-time execution.

        Used by the module interpreter, whose control flow (callable
        invocation, ``scf.if``) cannot be replayed as a flat circuit.
        """
        return StatevectorSimulator(num_qubits, num_bits, seed=seed)


def _trajectory_run(
    circuit: Circuit,
    shots: int,
    seed: int,
    noise_model=None,
    stats=None,
) -> list[tuple[int, ...]]:
    """One independent trajectory per shot, seeded ``seed + shot``.

    Under a noise model, each trajectory unravels every attached
    channel into its own Kraus draws (see
    :meth:`StatevectorSimulator.apply_kraus`), so ``stats`` counts
    noise events per shot.  Rule matching is a pure function of the
    instruction, so the per-instruction channel plan is computed once
    here rather than once per shot.
    """
    results = []
    output = circuit.output_bits or range(circuit.num_bits)
    channel_plan = None
    if noise_model is not None:
        channel_plan = [
            noise_model.channels_for(inst)
            if isinstance(inst, CircuitGate)
            else None
            for inst in circuit.instructions
        ]
    with _trace.span(
        "sim.sweep",
        engine="interpreter", shots=shots, qubits=circuit.num_qubits,
    ):
        for shot in range(shots):
            sim = StatevectorSimulator(
                circuit.num_qubits, circuit.num_bits, seed=seed + shot
            )
            bits = sim.run(
                circuit,
                noise_model=noise_model,
                stats=stats,
                channel_plan=channel_plan,
            )
            results.append(tuple(bits[i] for i in output))
    _SWEEPS.inc(engine="interpreter")
    return results


class InterpreterBackend(SimBackend):
    """Per-shot trajectory execution (the historical ``run_circuit``)."""

    name = "interpreter"

    def run_with_info(
        self,
        circuit: Circuit,
        shots: int = 1,
        seed: int = 0,
        noise_model=None,
    ) -> tuple[list[tuple[int, ...]], RunInfo]:
        from repro.noise.model import NoiseStats, effective_noise_model

        noise_model = effective_noise_model(noise_model)
        stats = NoiseStats()
        results = _trajectory_run(
            circuit, shots, seed, noise_model=noise_model, stats=stats
        )
        return results, RunInfo(
            self.name,
            shots,
            evolutions=shots,
            fast_path=False,
            channel_applications=stats.channel_applications,
            readout_applications=stats.readout_applications,
            gates_fused=fused_gate_savings(circuit),
            kernel=active_kernel_name(),
        )


def terminal_measurement_plan(
    circuit: Circuit,
) -> Optional[list[Measurement]]:
    """The circuit's measurements, if sampling can be vectorized.

    Returns the :class:`Measurement` list (in program order) when the
    circuit is *terminal-measurement*: every measurement comes after
    the last gate, no gate is classically conditioned, and no qubit is
    measured after being reset.  Trailing resets (``qfree`` of
    discarded qubits after the measurements) are tolerated — they
    cannot affect the recorded bits.  Returns ``None`` when any of
    those conditions fail; the circuit then needs per-shot trajectory
    execution.
    """
    plan: list[Measurement] = []
    measured_started = False
    reset_qubits: set[int] = set()
    for inst in circuit.instructions:
        if isinstance(inst, FusedUnitary):
            # A fused block is an unconditioned unitary like any gate.
            if measured_started:
                return None
        elif isinstance(inst, CircuitGate):
            if inst.condition is not None or measured_started:
                return None
        elif isinstance(inst, Reset):
            if not measured_started:
                # A reset mid-evolution makes the prefix non-unitary.
                return None
            reset_qubits.add(inst.qubit)
        elif isinstance(inst, Measurement):
            if inst.qubit in reset_qubits:
                return None
            measured_started = True
            plan.append(inst)
        else:
            return None
    return plan


class VectorizedStatevectorBackend(SimBackend):
    """Vectorized statevector backend.

    Terminal-measurement circuits: one evolution + vectorized sampling.
    Everything else — including *every* run under a noise model, whose
    per-shot Kraus draws rule out the single-evolution fast path — runs
    on the shot-batched trajectory engine (:mod:`repro.sim.batched`),
    which evolves all shots as one array.
    """

    name = "statevector"

    def run_with_info(
        self,
        circuit: Circuit,
        shots: int = 1,
        seed: int = 0,
        noise_model=None,
    ) -> tuple[list[tuple[int, ...]], RunInfo]:
        from repro.noise.model import NoiseStats, effective_noise_model

        noise_model = effective_noise_model(noise_model)
        plan = (
            terminal_measurement_plan(circuit)
            if noise_model is None
            else None
        )
        if plan is None:
            # Non-terminal circuit (or a noisy run, where each shot's
            # Kraus draws differ): evolve all shots simultaneously on
            # the batched trajectory engine (repro.sim.batched) rather
            # than one Python evolution per shot.
            stats = NoiseStats()
            results, sweeps = batched_run(
                circuit, shots, seed, noise_model=noise_model, stats=stats
            )
            return results, RunInfo(
                self.name,
                shots,
                evolutions=sweeps,
                fast_path=False,
                batched=True,
                channel_applications=stats.channel_applications,
                readout_applications=stats.readout_applications,
                gates_fused=fused_gate_savings(circuit),
                kernel=active_kernel_name(),
            )

        # The unitary prefix may mix plain gates with FusedUnitary
        # blocks from the compile-time fusion pass; both fuse into the
        # evolution step list (single-qubit runs still collapse here).
        prefix = [
            inst
            for inst in circuit.instructions
            if isinstance(inst, (CircuitGate, FusedUnitary))
        ]
        fused = fuse_single_qubit_gates(prefix)
        with _trace.span(
            "sim.sweep",
            engine="fast-path", shots=shots, qubits=circuit.num_qubits,
        ):
            sim = StatevectorSimulator(circuit.num_qubits, circuit.num_bits)
            sim.apply_fused(fused)
            results = _sample_terminal(
                sim.state, circuit, plan, shots, np.random.default_rng(seed)
            )
        _SWEEPS.inc(engine="fast-path")
        return results, RunInfo(
            self.name,
            shots,
            evolutions=1,
            fast_path=True,
            fused_ops=len(fused),
            gates_fused=fused_gate_savings(circuit),
            kernel=active_kernel_name(),
        )


def _sample_terminal(
    state: np.ndarray,
    circuit: Circuit,
    plan: Sequence[Measurement],
    shots: int,
    rng: np.random.Generator,
) -> list[tuple[int, ...]]:
    """Draw ``shots`` samples of the plan's measurements from |psi|^2."""
    return sample_measurement_probabilities(
        np.abs(state) ** 2, circuit, plan, shots, rng
    )


def sample_measurement_probabilities(
    probabilities: np.ndarray,
    circuit: Circuit,
    plan: Sequence[Measurement],
    shots: int,
    rng: np.random.Generator,
) -> list[tuple[int, ...]]:
    """Draw ``shots`` samples of the plan's measurements from a
    computational-basis probability tensor (one axis per qubit).

    Shared by the vectorized statevector backend (which passes
    |psi|^2) and the exact density-matrix backend (which passes the
    diagonal of rho) — one sampling path, one seed convention, so the
    two backends' zero-noise histograms match exactly.
    """
    output = list(circuit.output_bits or range(circuit.num_bits))
    if not plan:
        # Nothing measured: the classical register stays all-zero.
        return [(0,) * len(output)] * shots

    measured = sorted({m.qubit for m in plan})
    unmeasured = tuple(
        axis for axis in range(circuit.num_qubits) if axis not in measured
    )
    if unmeasured:
        probabilities = probabilities.sum(axis=unmeasured)
    probabilities = probabilities.reshape(-1)
    # Guard against float drift; choice() requires an exact simplex.
    probabilities = probabilities / probabilities.sum()

    outcomes = rng.choice(probabilities.size, size=shots, p=probabilities)

    # Marginal axis order is sorted qubit order, so the outcome's bit
    # for qubit q sits at position pos[q] from the left (the same
    # most-significant-first convention as full basis-state indices).
    pos = {qubit: i for i, qubit in enumerate(measured)}
    width = len(measured)
    bits = np.zeros((shots, circuit.num_bits), dtype=np.int64)
    for meas in plan:
        bits[:, meas.bit] = (outcomes >> (width - 1 - pos[meas.qubit])) & 1
    selected = bits[:, output]
    return [tuple(int(b) for b in row) for row in selected]


# ----------------------------------------------------------------------
# The backend registry.
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[], SimBackend]] = {}


def register_backend(
    name: str, factory: Callable[[], SimBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called once per :func:`get_backend` lookup and must
    return a fresh (or stateless shared) :class:`SimBackend`.  Re-using
    a name raises unless ``replace=True``.
    """
    if not replace and name in _REGISTRY:
        raise SimulationError(
            f"simulation backend {name!r} is already registered; pass "
            f"replace=True to override it"
        )
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(backend: "str | SimBackend | None" = None) -> SimBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` resolves to :data:`DEFAULT_BACKEND`.  Unknown names raise
    :class:`SimulationError` listing what is registered.
    """
    if isinstance(backend, SimBackend):
        return backend
    name = backend or DEFAULT_BACKEND
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(available_backends())
        raise SimulationError(
            f"unknown simulation backend {name!r} (registered backends: "
            f"{known}); see docs/simulators.md for how to add one"
        )
    return factory()


def run_circuit_with_info(
    circuit: Circuit,
    shots: int = 1,
    seed: int = 0,
    backend: "str | SimBackend | None" = None,
    noise_model=None,
    parallel_workers: Optional[int] = None,
) -> tuple[list[tuple[int, ...]], RunInfo]:
    """Run a circuit and return ``(results, RunInfo)`` for telemetry.

    ``backend=None`` resolves to :data:`DEFAULT_BACKEND`, the same
    single resolution point every execution entry point consults.
    ``noise_model`` (a :class:`repro.noise.NoiseModel`) makes the run
    noisy; it is only forwarded when set, so backends predating the
    noise subsystem keep working for ideal runs.

    ``parallel_workers`` routes the run through the parallel shot
    executor (:mod:`repro.exec`): shot chunks shard across a process
    pool with per-chunk derived seeds (``0`` means one worker per
    core).  Leave it ``None`` for the legacy single-process seed
    convention; any explicit value — including ``1`` — selects the
    sharded convention, so ``workers=1`` and ``workers=4`` runs are
    comparable.  Best for trajectory workloads (mid-circuit
    measurement or noise); the terminal-measurement fast path already
    makes shots near-free in one process, and sharding it repeats the
    one evolution per chunk.
    """
    if parallel_workers is not None:
        from repro.exec.parallel import parallel_run_with_info

        return parallel_run_with_info(
            circuit,
            shots,
            seed,
            workers=parallel_workers,
            backend=backend,
            noise_model=noise_model,
        )
    resolved = get_backend(backend)
    if noise_model is None:
        return resolved.run_with_info(circuit, shots, seed)
    return resolved.run_with_info(
        circuit, shots, seed, noise_model=noise_model
    )


register_backend(InterpreterBackend.name, InterpreterBackend)
register_backend(
    VectorizedStatevectorBackend.name, VectorizedStatevectorBackend
)
