"""Exact density-matrix simulation: the small-n noise reference.

The ``density_matrix`` backend evolves the full density operator
:math:`\\rho` as a ``(2, …, 2)`` tensor with ``2n`` axes — axis ``q``
is qubit ``q``'s *row* index, axis ``n + q`` its *column* index — so a
gate applies as two :func:`~repro.sim.statevector.apply_matrix_inplace`
sweeps (:math:`U` on the row axes, :math:`\\overline{U}` on the column
axes) and a Kraus channel as the exact sum
:math:`\\rho \\mapsto \\sum_i K_i \\rho K_i^\\dagger`.

Memory envelope: :math:`\\rho` holds :math:`4^n` complex128 amplitudes
— the *square* of a statevector — so the backend is capped at
:data:`MAX_DENSITY_QUBITS` qubits (12 ⇒ 256 MiB).  It is the
reference the stochastic Kraus-unraveling engines are validated
against, not a throughput backend.

Mid-circuit measurement and classically conditioned gates run by
*branching on the classical register*: the state is a list of
``(probability, bits, rho)`` branches, a measurement splits each branch
by outcome (and, under a readout confusion matrix, by recorded bit),
and branches with identical classical bits are re-merged into one
mixture — bounding the branch count by the number of distinct
classical-register values, and keeping the whole evolution exact.
Sampling happens once at the end, from the exact output distribution.

For *terminal-measurement* circuits the backend skips branching
entirely and draws shots from the diagonal of :math:`\\rho` through the
same sampling helper as the vectorized statevector backend — with the
same seed convention, so at zero noise the two backends' histograms
match **exactly**, not just in distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.qcircuit.fusion import FusedUnitary, controlled_matrix
from repro.sim.backend import (
    RunInfo,
    SimBackend,
    register_backend,
    sample_measurement_probabilities,
    terminal_measurement_plan,
)
from repro.sim.kernels import active_kernel_name
from repro.sim.statevector import apply_matrix_inplace, gate_matrix

__all__ = [
    "MAX_DENSITY_QUBITS",
    "DensityMatrixBackend",
    "DensityMatrixSimulator",
    "controlled_matrix",  # canonical home: repro.qcircuit.fusion
]

#: Dense density-matrix limit: 4^n complex128 amplitudes (4^12 = 256 MiB).
MAX_DENSITY_QUBITS = 12

#: Branches below this probability are pruned (they cannot influence
#: any reported digit of the output distribution).
_BRANCH_EPSILON = 1e-15

_PROJECT_ZERO = np.array([[1, 0], [0, 0]], dtype=complex)
_X_PROJECT_ONE = np.array([[0, 1], [0, 0]], dtype=complex)  # X @ P1


class DensityMatrixSimulator:
    """One density operator on ``num_qubits`` qubits, evolved exactly."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits > MAX_DENSITY_QUBITS:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the density-matrix limit "
                f"of {MAX_DENSITY_QUBITS} (rho holds 4^n amplitudes)"
            )
        self.num_qubits = num_qubits
        axes = max(num_qubits, 1)
        self._axes = axes
        self.rho = np.zeros((2,) * (2 * axes), dtype=complex)
        self.rho[(0,) * (2 * axes)] = 1.0

    def copy(self) -> "DensityMatrixSimulator":
        duplicate = object.__new__(DensityMatrixSimulator)
        duplicate.num_qubits = self.num_qubits
        duplicate._axes = self._axes
        duplicate.rho = self.rho.copy()
        return duplicate

    # ------------------------------------------------------------------
    # Unitary evolution.
    # ------------------------------------------------------------------
    def _row_axes(self, qubits) -> tuple[int, ...]:
        return tuple(qubits)

    def _col_axes(self, qubits) -> tuple[int, ...]:
        return tuple(self._axes + q for q in qubits)

    def apply_unitary(self, matrix: np.ndarray, qubits) -> None:
        """rho -> U rho U^dag on the given qubits."""
        apply_matrix_inplace(self.rho, matrix, self._row_axes(qubits))
        apply_matrix_inplace(
            self.rho, matrix.conj(), self._col_axes(qubits)
        )

    def apply_gate(self, gate: CircuitGate) -> None:
        matrix = controlled_matrix(
            gate_matrix(gate.name, gate.params), gate.ctrl_states
        )
        self.apply_unitary(matrix, gate.qubits)

    # ------------------------------------------------------------------
    # Channels and non-unitary operations.
    # ------------------------------------------------------------------
    def apply_operators(self, operators, qubits) -> None:
        """rho -> sum_i K_i rho K_i^dag (exact Kraus-sum application)."""
        rows = self._row_axes(qubits)
        cols = self._col_axes(qubits)
        result: Optional[np.ndarray] = None
        for op in operators:
            term = self.rho.copy()
            apply_matrix_inplace(term, op, rows)
            apply_matrix_inplace(term, op.conj(), cols)
            result = term if result is None else result + term
        self.rho = result

    def apply_channel(self, channel, qubits) -> None:
        self.apply_operators(channel.operators, qubits)

    def diagonal_probabilities(self) -> np.ndarray:
        """The computational-basis distribution as a ``(2, …, 2)`` real
        tensor (one axis per qubit) — the diagonal of rho."""
        dim = 1 << self._axes
        diagonal = self.rho.reshape(dim, dim).diagonal().real
        return diagonal.reshape((2,) * self._axes).copy()

    def probability_one(self, qubit: int) -> float:
        index: list = [slice(None)] * self._axes
        index[qubit] = 1
        return float(self.diagonal_probabilities()[tuple(index)].sum())

    def project(self, qubit: int, outcome: int, probability: float) -> None:
        """Collapse ``qubit`` to ``outcome`` (probability must be its
        pre-computed likelihood; the caller branches on both outcomes)."""
        if probability <= 0.0:
            raise SimulationError(
                "projection onto zero-probability outcome"
            )
        index: list = [slice(None)] * self.rho.ndim
        index[qubit] = 1 - outcome
        self.rho[tuple(index)] = 0.0
        index = [slice(None)] * self.rho.ndim
        index[self._axes + qubit] = 1 - outcome
        self.rho[tuple(index)] = 0.0
        self.rho /= probability

    def reset(self, qubit: int) -> None:
        """Reset to |0> without recording: P0 rho P0 + X P1 rho P1 X."""
        self.apply_operators((_PROJECT_ZERO, _X_PROJECT_ONE), (qubit,))

    def trace(self) -> float:
        dim = 1 << self._axes
        return float(self.rho.reshape(dim, dim).trace().real)


@dataclass(frozen=True)
class _Branch:
    """One classical-register branch of an exact noisy evolution."""

    probability: float
    bits: tuple[int, ...]
    sim: DensityMatrixSimulator


class DensityMatrixBackend(SimBackend):
    """Exact rho evolution under a noise model (the small-n reference).

    ``run_with_info`` computes the exact output distribution once
    (``evolutions == 1`` regardless of shot count) and samples shots
    from it.  Zero-noise terminal-measurement circuits reuse the
    vectorized statevector backend's sampling helper with the same
    seed convention, so their histograms match that backend exactly.
    """

    name = "density_matrix"

    def run_with_info(
        self,
        circuit: Circuit,
        shots: int = 1,
        seed: int = 0,
        noise_model=None,
    ) -> tuple[list[tuple[int, ...]], RunInfo]:
        from repro.noise.model import NoiseStats, effective_noise_model

        noise_model = effective_noise_model(noise_model)
        stats = NoiseStats()
        rng = np.random.default_rng(seed)
        plan = self._usable_terminal_plan(circuit, noise_model)
        if plan is not None:
            probabilities = self._terminal_probabilities(
                circuit, noise_model, stats
            )
            results = sample_measurement_probabilities(
                probabilities, circuit, plan, shots, rng
            )
        else:
            distribution = self._branched_distribution(
                circuit, noise_model, stats
            )
            outcomes = sorted(distribution)
            weights = np.array(
                [distribution[outcome] for outcome in outcomes]
            )
            weights = weights / weights.sum()
            drawn = rng.choice(len(outcomes), size=shots, p=weights)
            results = [outcomes[index] for index in drawn]
        from repro.qcircuit.fusion import fused_gate_savings

        info = RunInfo(
            self.name,
            shots,
            evolutions=1,
            fast_path=plan is not None,
            channel_applications=stats.channel_applications,
            readout_applications=stats.readout_applications,
            gates_fused=fused_gate_savings(circuit),
            kernel=active_kernel_name(),
        )
        return results, info

    # ------------------------------------------------------------------
    # Exact distributions (also the public analysis API).
    # ------------------------------------------------------------------
    def output_distribution(
        self, circuit: Circuit, noise_model=None
    ) -> dict[tuple[int, ...], float]:
        """The exact probability of every output-bit tuple.

        The analysis twin of :meth:`run_with_info`: no sampling, just
        the distribution the shots are drawn from.  Benchmarks use it
        to compute fidelity-vs-noise-strength tables, and the
        unraveling tests converge to it.
        """
        from repro.noise.model import NoiseStats, effective_noise_model

        noise_model = effective_noise_model(noise_model)
        stats = NoiseStats()
        plan = self._usable_terminal_plan(circuit, noise_model)
        output = list(circuit.output_bits or range(circuit.num_bits))
        if plan is None:
            return self._branched_distribution(circuit, noise_model, stats)
        probabilities = self._terminal_probabilities(
            circuit, noise_model, stats
        )
        if not plan:
            return {(0,) * len(output): 1.0}
        measured = sorted({m.qubit for m in plan})
        unmeasured = tuple(
            axis
            for axis in range(circuit.num_qubits)
            if axis not in measured
        )
        marginal = probabilities
        if unmeasured:
            marginal = marginal.sum(axis=unmeasured)
        marginal = marginal.reshape(-1)
        marginal = marginal / marginal.sum()
        position = {qubit: i for i, qubit in enumerate(measured)}
        width = len(measured)
        distribution: dict[tuple[int, ...], float] = {}
        for index, probability in enumerate(marginal):
            if probability <= 0.0:
                continue
            bits = [0] * circuit.num_bits
            for meas in plan:
                bits[meas.bit] = (
                    index >> (width - 1 - position[meas.qubit])
                ) & 1
            key = tuple(bits[i] for i in output)
            distribution[key] = distribution.get(key, 0.0) + float(
                probability
            )
        return distribution

    @staticmethod
    def _usable_terminal_plan(circuit: Circuit, noise_model):
        """The terminal plan, unless readout confusion makes the
        marginal-folding shortcut wrong.

        The terminal path folds confusion once per measured *qubit*
        axis; a qubit measured into two bits would then record two
        perfectly correlated corrupted bits, while the trajectory
        engines draw one independent flip per ``Measurement``.  Such
        circuits (never emitted by the compiler, but legal) route
        through the branched path, whose per-measurement semantics
        match the other engines exactly.
        """
        plan = terminal_measurement_plan(circuit)
        if plan is None or noise_model is None:
            return plan
        measured = [m.qubit for m in plan]
        for qubit in {q for q in measured if measured.count(q) > 1}:
            if noise_model.readout_error_for(qubit) is not None:
                return None
        return plan

    def _terminal_probabilities(
        self, circuit: Circuit, noise_model, stats
    ) -> np.ndarray:
        """Evolve rho through gates + channels; return the diagonal with
        readout confusion folded onto each measured qubit's axis."""
        sim = DensityMatrixSimulator(circuit.num_qubits)
        for inst in circuit.instructions:
            if isinstance(inst, FusedUnitary):
                # Fused blocks carry no noise channels (channels attach
                # by gate name; noisy runs execute the unfused circuit).
                sim.apply_unitary(inst.matrix, inst.targets)
                continue
            if not isinstance(inst, CircuitGate):
                break  # terminal plan: only measurements/resets follow
            sim.apply_gate(inst)
            if noise_model is not None:
                for channel, qubits in noise_model.channels_for(inst):
                    sim.apply_channel(channel, qubits)
                    stats.channel_applications += 1
        probabilities = sim.diagonal_probabilities()
        if noise_model is not None:
            for qubit in sorted(
                {m.qubit for m in circuit.measurements}
            ):
                error = noise_model.readout_error_for(qubit)
                if error is None:
                    continue
                probabilities = np.moveaxis(
                    np.tensordot(
                        error.matrix.T,
                        probabilities,
                        axes=([1], [qubit]),
                    ),
                    0,
                    qubit,
                )
                stats.readout_applications += 1
        return probabilities

    def _branched_distribution(
        self, circuit: Circuit, noise_model, stats
    ) -> dict[tuple[int, ...], float]:
        branches = [
            _Branch(
                1.0,
                (0,) * circuit.num_bits,
                DensityMatrixSimulator(circuit.num_qubits),
            )
        ]
        for inst in circuit.instructions:
            if isinstance(inst, CircuitGate):
                applications = (
                    noise_model.channels_for(inst)
                    if noise_model is not None
                    else ()
                )
                for branch in branches:
                    if inst.condition is not None:
                        bit, required = inst.condition
                        if branch.bits[bit] != required:
                            continue
                    branch.sim.apply_gate(inst)
                    for channel, qubits in applications:
                        branch.sim.apply_channel(channel, qubits)
                        stats.channel_applications += 1
            elif isinstance(inst, FusedUnitary):
                for branch in branches:
                    branch.sim.apply_unitary(inst.matrix, inst.targets)
            elif isinstance(inst, Measurement):
                branches = self._measure(
                    branches, inst, noise_model, stats
                )
            elif isinstance(inst, Reset):
                for branch in branches:
                    branch.sim.reset(inst.qubit)
            else:
                raise SimulationError(f"unknown instruction {inst!r}")
        output = list(circuit.output_bits or range(circuit.num_bits))
        distribution: dict[tuple[int, ...], float] = {}
        for branch in branches:
            key = tuple(branch.bits[i] for i in output)
            distribution[key] = (
                distribution.get(key, 0.0) + branch.probability
            )
        total = sum(distribution.values())
        return {key: p / total for key, p in distribution.items()}

    def _measure(
        self, branches, inst: Measurement, noise_model, stats
    ) -> list[_Branch]:
        error = (
            noise_model.readout_error_for(inst.qubit)
            if noise_model is not None
            else None
        )
        if error is not None:
            stats.readout_applications += 1
        split: list[_Branch] = []
        for branch in branches:
            p_one = branch.sim.probability_one(inst.qubit)
            for outcome, probability in ((0, 1.0 - p_one), (1, p_one)):
                if probability <= _BRANCH_EPSILON:
                    continue
                collapsed = branch.sim.copy()
                collapsed.project(inst.qubit, outcome, probability)
                if error is None:
                    recorded_options = ((outcome, 1.0),)
                else:
                    recorded_options = tuple(
                        (recorded, float(error.matrix[outcome, recorded]))
                        for recorded in (0, 1)
                        if error.matrix[outcome, recorded]
                        > _BRANCH_EPSILON
                    )
                for index, (recorded, record_p) in enumerate(
                    recorded_options
                ):
                    bits = list(branch.bits)
                    bits[inst.bit] = recorded
                    split.append(
                        _Branch(
                            branch.probability * probability * record_p,
                            tuple(bits),
                            collapsed if index == 0 else collapsed.copy(),
                        )
                    )
        return self._merge(split)

    @staticmethod
    def _merge(branches: list[_Branch]) -> list[_Branch]:
        """Re-merge branches with identical classical bits into one
        mixture, bounding the branch count by the register's support."""
        grouped: dict[tuple[int, ...], list[_Branch]] = {}
        for branch in branches:
            grouped.setdefault(branch.bits, []).append(branch)
        merged: list[_Branch] = []
        for bits, group in grouped.items():
            if len(group) == 1:
                merged.append(group[0])
                continue
            total = sum(branch.probability for branch in group)
            mixed = group[0].sim.copy()
            mixed.rho *= group[0].probability / total
            for branch in group[1:]:
                mixed.rho += (branch.probability / total) * branch.sim.rho
            merged.append(replace(group[0], probability=total, sim=mixed))
        return merged


register_backend(DensityMatrixBackend.name, DensityMatrixBackend)
