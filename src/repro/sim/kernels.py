"""Gate matrices and the pluggable apply-matrix kernel registry.

Every simulation engine in the repository — the per-shot interpreter,
the vectorized statevector sampler, the shot-batched trajectory engine,
and the exact density-matrix backend — funnels each gate application
through one primitive: *apply a 2^k x 2^k unitary to k target axes of a
complex tensor, in place*.  This module owns that primitive.

Two implementations ship in-tree, behind a registry
(:func:`register_kernel` / :func:`get_kernel`):

``"numpy"``
    The pure-NumPy reference: an LRU-cached axis permutation, one
    reshape to a ``(2^k, rest)`` block, one matmul, and the inverse
    permutation written back into the caller's buffer.  Always
    available, and the fallback for inputs the JIT kernel does not
    accept (non-contiguous control-sliced views, exotic dtypes).

``"numba"``
    An optional ``numba``-jitted gather/matvec/scatter loop over
    precomputed flat offsets.  It avoids the NumPy path's two full-size
    temporaries (the reshape of a permuted view copies, and so does the
    write-back), working directly in the caller's buffer — including
    the batched ``(shots, 2, ..., 2)`` layout, whose leading shot axis
    is just another riding-along axis in the offset enumeration.
    Registered unconditionally; *resolving* it raises a clear
    :class:`~repro.errors.SimulationError` when numba is not installed.

The active kernel is *context-local* (:mod:`contextvars`): the process
default comes from the ``REPRO_SIM_KERNEL`` environment variable
(``"numba"`` when importable, ``"numpy"`` otherwise — the automatic
pure-NumPy fallback CI exercises on both legs), and per-run selection
goes through :func:`use_kernel` (which is what
``CompileOptions.sim_kernel`` drives).  Because the override lives in a
:class:`~contextvars.ContextVar` rather than a module global,
concurrent executors — threads of the evaluation harness, the parallel
shot executor's dispatch path (:mod:`repro.exec`) — can never observe
each other's selection, and a worker process spawned with any start
method resolves the same env-driven default as its parent.  Every
backend records the kernel that actually executed in
``RunInfo.kernel``.  See docs/performance.md.
"""

from __future__ import annotations

import cmath
import contextlib
import contextvars
import functools
import importlib.util
import math
import os
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import SimulationError


# ----------------------------------------------------------------------
# Gate matrices (shared by every engine and by the fusion pass).
# ----------------------------------------------------------------------
def _build_gate_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    """The unitary matrix of a known 1- or 2-qubit gate."""
    from repro.parameters import is_symbolic

    symbolic = [str(p) for p in params if is_symbolic(p)]
    if symbolic:
        raise SimulationError(
            f"gate {name!r} has unbound symbolic parameter(s) "
            f"{', '.join(symbolic)}; bind concrete values first with "
            "CompileResult.bind(...) or pass params= to the simulation "
            "entry point (docs/variational.md)"
        )
    inv_sqrt2 = 1.0 / math.sqrt(2.0)
    if name == "x":
        return np.array([[0, 1], [1, 0]], dtype=complex)
    if name == "y":
        return np.array([[0, -1j], [1j, 0]], dtype=complex)
    if name == "z":
        return np.array([[1, 0], [0, -1]], dtype=complex)
    if name == "h":
        return np.array([[1, 1], [1, -1]], dtype=complex) * inv_sqrt2
    if name == "s":
        return np.array([[1, 0], [0, 1j]], dtype=complex)
    if name == "sdg":
        return np.array([[1, 0], [0, -1j]], dtype=complex)
    if name == "t":
        return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
    if name == "tdg":
        return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
    if name == "sx":
        return 0.5 * np.array(
            [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
        )
    if name == "sxdg":
        return 0.5 * np.array(
            [[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex
        )
    if name == "p":
        return np.array([[1, 0], [0, cmath.exp(1j * params[0])]], dtype=complex)
    if name == "rx":
        half = params[0] / 2.0
        return np.array(
            [
                [math.cos(half), -1j * math.sin(half)],
                [-1j * math.sin(half), math.cos(half)],
            ],
            dtype=complex,
        )
    if name == "ry":
        half = params[0] / 2.0
        return np.array(
            [
                [math.cos(half), -math.sin(half)],
                [math.sin(half), math.cos(half)],
            ],
            dtype=complex,
        )
    if name == "rz":
        half = params[0] / 2.0
        return np.array(
            [
                [cmath.exp(-1j * half), 0],
                [0, cmath.exp(1j * half)],
            ],
            dtype=complex,
        )
    if name == "swap":
        return np.array(
            [
                [1, 0, 0, 0],
                [0, 0, 1, 0],
                [0, 1, 0, 0],
                [0, 0, 0, 1],
            ],
            dtype=complex,
        )
    raise SimulationError(f"no matrix for gate {name!r}")


@functools.lru_cache(maxsize=4096)
def _cached_gate_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    matrix = _build_gate_matrix(name, params)
    # Cached matrices are shared across every simulator in the process;
    # freeze them so no caller can corrupt the cache in place.
    matrix.setflags(write=False)
    return matrix


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """The (cached, read-only) unitary matrix of a known gate.

    Rotation angles participate in the cache key, so circuits built
    from a fixed gate set — e.g. after Selinger decomposition — pay the
    trigonometry once per distinct (name, params) pair rather than once
    per gate application.
    """
    return _cached_gate_matrix(name, tuple(params))


# ----------------------------------------------------------------------
# The pure-NumPy apply kernel (the always-available reference).
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=4096)
def _axis_permutation(
    num_axes: int, targets: tuple[int, ...]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Cached (perm, inverse) moving ``targets`` to the leading axes."""
    rest = tuple(axis for axis in range(num_axes) if axis not in targets)
    perm = targets + rest
    inverse = tuple(int(axis) for axis in np.argsort(perm))
    return perm, inverse


class NumpyKernel:
    """Reshape/transpose matmul in NumPy; handles any array layout."""

    name = "numpy"

    @staticmethod
    def apply(
        state: np.ndarray, matrix: np.ndarray, targets: tuple[int, ...]
    ) -> None:
        k = len(targets)
        perm, inverse = _axis_permutation(state.ndim, targets)
        permuted_shape = tuple(state.shape[axis] for axis in perm)
        block = state.transpose(perm).reshape(2**k, -1)
        updated = np.matmul(matrix, block)
        state[...] = updated.reshape(permuted_shape).transpose(inverse)


# ----------------------------------------------------------------------
# The optional numba JIT kernel.
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def numba_available() -> bool:
    """Whether the optional ``numba`` dependency is importable.

    Memoized: this sits under :func:`default_kernel_name`, which the
    per-gate-application hot path consults, and ``find_spec`` hits the
    filesystem.  Installing numba mid-process is not supported.
    """
    return importlib.util.find_spec("numba") is not None


@functools.lru_cache(maxsize=64)
def _flat_offsets(
    shape: tuple[int, ...], targets: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """``(base, target)`` flat-element offsets for a C-contiguous array.

    ``base`` enumerates every combination of the non-target axes (the
    gather groups); ``target`` enumerates the 2^k target-axis index
    combinations in matrix row order (first target most significant —
    the same convention as the NumPy kernel's leading-axes permutation).
    """
    strides = np.ones(len(shape), dtype=np.int64)
    for axis in range(len(shape) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * shape[axis + 1]
    base = np.zeros(1, dtype=np.int64)
    for axis in range(len(shape)):
        if axis in targets:
            continue
        base = (
            base[:, None]
            + np.arange(shape[axis], dtype=np.int64) * strides[axis]
        ).reshape(-1)
    target = np.zeros(1, dtype=np.int64)
    for axis in targets:
        target = (
            target[:, None]
            + np.arange(shape[axis], dtype=np.int64) * strides[axis]
        ).reshape(-1)
    base.setflags(write=False)
    target.setflags(write=False)
    return base, target


class NumbaKernel:
    """JIT gather/matvec/scatter loop (requires ``numba``).

    Works in the caller's buffer with no full-size temporaries.  Inputs
    it cannot serve — non-contiguous views (control slicing), non-
    complex128 dtypes — silently take the NumPy path, so correctness
    never depends on layout.
    """

    name = "numba"

    def __init__(self) -> None:
        if not numba_available():
            raise SimulationError(
                "the 'numba' apply kernel requires the optional numba "
                "dependency; install numba or select kernel 'numpy' "
                "(see docs/performance.md)"
            )
        self._jit = None

    def _compiled(self):
        if self._jit is None:
            import numba

            @numba.njit(cache=True)
            def _apply_flat(flat, matrix, base, target):  # pragma: no cover
                dim = target.shape[0]
                amplitudes = np.empty(dim, dtype=np.complex128)
                for group in range(base.shape[0]):
                    offset = base[group]
                    for i in range(dim):
                        amplitudes[i] = flat[offset + target[i]]
                    for i in range(dim):
                        accumulated = 0.0 + 0.0j
                        for j in range(dim):
                            accumulated += matrix[i, j] * amplitudes[j]
                        flat[offset + target[i]] = accumulated

            self._jit = _apply_flat
        return self._jit

    def apply(
        self, state: np.ndarray, matrix: np.ndarray, targets: tuple[int, ...]
    ) -> None:
        if (
            not state.flags["C_CONTIGUOUS"]
            or state.dtype != np.complex128
        ):
            NumpyKernel.apply(state, matrix, targets)
            return
        base, target = _flat_offsets(state.shape, targets)
        matrix = np.ascontiguousarray(matrix, dtype=np.complex128)
        self._compiled()(state.reshape(-1), matrix, base, target)


# ----------------------------------------------------------------------
# The kernel registry and active-kernel selection.
# ----------------------------------------------------------------------
#: Environment variable naming the default kernel for the process.
KERNEL_ENV_VAR = "REPRO_SIM_KERNEL"

_KERNEL_REGISTRY: dict[str, Callable[[], object]] = {}
_KERNEL_INSTANCES: dict[str, object] = {}


def register_kernel(
    name: str, factory: Callable[[], object], *, replace: bool = False
) -> None:
    """Register an apply-kernel factory under ``name``.

    A kernel object exposes ``name`` and
    ``apply(state, matrix, targets)``; the factory is called once (the
    instance is cached) and may raise :class:`SimulationError` when an
    optional dependency is missing — the error then surfaces at
    *selection* time, not registration time.
    """
    if not replace and name in _KERNEL_REGISTRY:
        raise SimulationError(
            f"apply kernel {name!r} is already registered; pass "
            f"replace=True to override it"
        )
    _KERNEL_REGISTRY[name] = factory
    _KERNEL_INSTANCES.pop(name, None)


def available_kernels() -> tuple[str, ...]:
    """Registered kernel names, sorted (registration, not importability)."""
    return tuple(sorted(_KERNEL_REGISTRY))


def get_kernel(name: "str | None" = None):
    """Resolve a kernel name to its (cached) instance.

    ``None`` resolves to the process default (:func:`default_kernel_name`).
    Unknown names — and registered kernels whose optional dependency is
    missing — raise :class:`SimulationError`.
    """
    resolved = name or default_kernel_name()
    instance = _KERNEL_INSTANCES.get(resolved)
    if instance is not None:
        return instance
    factory = _KERNEL_REGISTRY.get(resolved)
    if factory is None:
        known = ", ".join(available_kernels())
        raise SimulationError(
            f"unknown apply kernel {resolved!r} (registered kernels: "
            f"{known}); see docs/performance.md"
        )
    instance = factory()
    _KERNEL_INSTANCES[resolved] = instance
    return instance


def default_kernel_name() -> str:
    """The process-default kernel name.

    ``REPRO_SIM_KERNEL`` wins when set; otherwise ``"numba"`` when the
    optional dependency is importable, else the pure-NumPy fallback.
    """
    from_env = os.environ.get(KERNEL_ENV_VAR)
    if from_env:
        return from_env
    return "numba" if numba_available() else "numpy"


register_kernel(NumpyKernel.name, NumpyKernel)
register_kernel(NumbaKernel.name, NumbaKernel)

#: The context-local kernel override.  ``None`` means "no override":
#: the active kernel is then the env-driven process default.  Only
#: :func:`use_kernel` writes this; keeping the override in a
#: ContextVar (not a module global) is what makes kernel selection
#: safe for concurrent executors and stateless across worker
#: processes — a worker that never calls ``use_kernel`` resolves
#: exactly what its parent's environment dictates.
_KERNEL_OVERRIDE: "contextvars.ContextVar[Optional[str]]" = (
    contextvars.ContextVar("repro_sim_kernel_override", default=None)
)


def current_kernel_selection() -> Optional[str]:
    """The context-local override name, or ``None`` when the process
    default applies.  The parallel shot executor ships this (resolved)
    to its workers so they execute under the dispatcher's selection."""
    return _KERNEL_OVERRIDE.get()


def active_kernel():
    """The kernel object currently serving :func:`apply_matrix_inplace`.

    Resolution order: the context-local :func:`use_kernel` override,
    then the env-driven process default (:func:`default_kernel_name`).
    """
    return get_kernel(_KERNEL_OVERRIDE.get() or default_kernel_name())


def active_kernel_name() -> str:
    """The active kernel's registry name (recorded in ``RunInfo``)."""
    return active_kernel().name


@contextlib.contextmanager
def use_kernel(name: "str | None") -> Iterator[None]:
    """Run a block under a specific apply kernel.

    ``None`` is a no-op (keep the active kernel), so callers can thread
    an optional selection straight through::

        with use_kernel(options.sim_kernel):
            backend.run_with_info(circuit, shots, seed)

    The selection is **context-local** (:mod:`contextvars`): it is
    visible only to the current thread/task and any contexts forked
    from it, so two concurrent executors selecting different kernels
    never interfere.  Unknown names (and kernels whose optional
    dependency is missing) raise on *entry*, before the body runs.
    """
    if name is None:
        yield
        return
    # Validate eagerly so a bad selection fails here, not mid-sweep.
    token = _KERNEL_OVERRIDE.set(get_kernel(name).name)
    try:
        yield
    finally:
        _KERNEL_OVERRIDE.reset(token)


def apply_matrix_inplace(
    state: np.ndarray, matrix: np.ndarray, targets: tuple[int, ...]
) -> None:
    """Apply a 2^k x 2^k ``matrix`` to ``state``'s target axes, in place.

    ``state`` is any complex array whose ``targets`` axes each have
    length 2; every other axis — including a leading shot axis in the
    batched engine, or the surviving axes of a control-sliced view —
    rides along unchanged.  Dispatches to the active kernel (see
    :func:`use_kernel`); the pure-NumPy kernel is the reference
    implementation and the universal fallback.
    """
    active_kernel().apply(state, matrix, targets)
