"""A dense statevector simulator for flat circuits.

The simulation engine under the pluggable backends of
:mod:`repro.sim.backend` (together, the reproduction's substitute for
qir-runner, paper §7): it executes the same circuits the backends emit,
including mid-circuit measurement, reset, classically conditioned
gates, multi-controlled gates with arbitrary control polarity, and the
:class:`~repro.qcircuit.fusion.FusedUnitary` blocks produced by the
compile-time fusion pass.  Gate matrices are cached per (name, params)
and every matrix application goes through the pluggable apply-kernel
registry (:mod:`repro.sim.kernels` — pure NumPy or the optional numba
JIT).

Convention: qubit 0 is the *leftmost* qubit of a ket, matching the
position order of Qwerty qubit literals ('10' means qubit 0 is |1> and
qubit 1 is |0>), so basis state index ``x`` has qubit ``q`` equal to
bit ``(x >> (n - 1 - q)) & 1``.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.qcircuit.fusion import FusedGate, FusedUnitary
from repro.sim.kernels import apply_matrix_inplace, gate_matrix

__all__ = [
    "StatevectorSimulator",
    "apply_gates_to_state",
    "apply_matrix_inplace",
    "control_sliced_view",
    "gate_matrix",
    "run_circuit",
    "unitary_of_gates",
]


def __getattr__(name: str):
    # Deprecation shim: single-qubit-run fusion moved into the compile
    # pipeline (repro.qcircuit.fusion) so every backend benefits, not
    # just this module's callers.  Old imports keep working, with a
    # warning pointing at the new home.
    if name == "fuse_single_qubit_gates":
        warnings.warn(
            f"repro.sim.statevector.{name} has moved to "
            f"repro.qcircuit.fusion; update the import "
            f"(see docs/performance.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.qcircuit.fusion as fusion

        return getattr(fusion, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def control_sliced_view(
    state: np.ndarray,
    targets: tuple[int, ...],
    controls: tuple[int, ...],
    ctrl_states: tuple[int, ...],
    axis_offset: int = 0,
) -> tuple[np.ndarray, tuple[int, ...]]:
    """The control-sliced view of ``state`` plus renumbered target axes.

    Indexing each control qubit's axis at its required polarity yields
    the sub-array a controlled unitary acts on; the surviving target
    axes shrink by one for every removed control axis below them.
    ``axis_offset`` maps qubit numbers to array axes (0 for a bare
    statevector, 1 when axis 0 is the shot axis of a batch).  Shared by
    the single-shot simulator and the batched trajectory engine so
    control handling cannot diverge between them.
    """
    view = state
    if controls:
        index: list = [slice(None)] * state.ndim
        for qubit, required in zip(controls, ctrl_states):
            index[axis_offset + qubit] = required
        view = state[tuple(index)]
        removed = sorted(controls)
        targets = tuple(
            target - sum(1 for r in removed if r < target)
            for target in targets
        )
    return view, tuple(axis_offset + target for target in targets)


class StatevectorSimulator:
    """Simulates a fixed number of qubits plus a classical bit register."""

    def __init__(self, num_qubits: int, num_bits: int = 0, seed: int = 0) -> None:
        if num_qubits > 24:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the dense-simulation limit"
            )
        self.num_qubits = num_qubits
        self.state = np.zeros((2,) * max(num_qubits, 1), dtype=complex)
        self.state[(0,) * max(num_qubits, 1)] = 1.0
        self.bits = [0] * num_bits
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Gate application.
    # ------------------------------------------------------------------
    def apply_gate(self, gate: CircuitGate) -> None:
        if gate.condition is not None:
            bit, required = gate.condition
            if self.bits[bit] != required:
                return
        matrix = gate_matrix(gate.name, gate.params)
        self._apply_matrix(matrix, gate.targets, gate.controls, gate.ctrl_states)

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[int, ...] = (),
        ctrl_states: tuple[int, ...] = (),
    ) -> None:
        """Apply a raw (possibly fused) unitary to explicit qubits."""
        dim = 2 ** len(targets)
        if matrix.shape != (dim, dim):
            raise SimulationError(
                f"unitary of shape {matrix.shape} does not act on "
                f"{len(targets)} qubit(s)"
            )
        self._apply_matrix(matrix, targets, controls, ctrl_states)

    def apply_fused(self, fused: Sequence[FusedGate]) -> None:
        """Apply a fused gate list (see
        :func:`repro.qcircuit.fusion.fuse_single_qubit_gates`)."""
        for op in fused:
            self._apply_matrix(op.matrix, op.targets, op.controls, op.ctrl_states)

    def _apply_matrix(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[int, ...] = (),
        ctrl_states: tuple[int, ...] = (),
    ) -> None:
        view, axes = control_sliced_view(
            self.state, tuple(targets), controls, ctrl_states
        )
        apply_matrix_inplace(view, matrix, axes)

    # ------------------------------------------------------------------
    # Non-unitary operations.
    # ------------------------------------------------------------------
    def probability_one(self, qubit: int) -> float:
        index: list = [slice(None)] * self.num_qubits
        index[qubit] = 1
        return float(np.sum(np.abs(self.state[tuple(index)]) ** 2))

    def measure(self, qubit: int) -> int:
        p_one = self.probability_one(qubit)
        outcome = 1 if self.rng.random() < p_one else 0
        self._project(qubit, outcome, p_one)
        return outcome

    def _project(self, qubit: int, outcome: int, p_one: float) -> None:
        probability = p_one if outcome else 1.0 - p_one
        if probability <= 0.0:
            raise SimulationError("projection onto zero-probability outcome")
        index: list = [slice(None)] * self.num_qubits
        index[qubit] = 1 - outcome
        self.state[tuple(index)] = 0.0
        self.state /= math.sqrt(probability)

    def reset(self, qubit: int) -> None:
        outcome = self.measure(qubit)
        if outcome == 1:
            self.apply_gate(CircuitGate("x", (qubit,)))

    # ------------------------------------------------------------------
    # Stochastic Kraus unraveling (noise).
    # ------------------------------------------------------------------
    def apply_kraus(self, operators, targets) -> None:
        """Unravel one Kraus channel along this trajectory.

        Selects operator ``i`` with probability ``||K_i |psi>||^2``
        (one ``rng.random()`` draw, the same convention as
        :meth:`measure`) and collapses to the renormalized
        ``K_i |psi>``.  The single-shot twin of
        :meth:`repro.sim.batched.BatchedStatevector.apply_kraus`.
        """
        targets = tuple(targets)
        if len(operators) == 1:
            apply_matrix_inplace(self.state, operators[0], targets)
            return
        probabilities = []
        buffer = np.empty_like(self.state)
        for op in operators:
            buffer[...] = self.state
            apply_matrix_inplace(buffer, op, targets)
            probabilities.append(float(np.vdot(buffer, buffer).real))
        total = sum(probabilities)
        if total <= 0.0:
            raise SimulationError(
                "Kraus probabilities vanished (non-normalized state?)"
            )
        draw = self.rng.random() * total
        accumulated = 0.0
        chosen = len(operators) - 1
        for index, probability in enumerate(probabilities):
            accumulated += probability
            if draw < accumulated:
                chosen = index
                break
        apply_matrix_inplace(self.state, operators[chosen], targets)
        self.state /= math.sqrt(probabilities[chosen])

    # ------------------------------------------------------------------
    # Whole-circuit execution.
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        noise_model=None,
        stats=None,
        channel_plan=None,
    ) -> list[int]:
        """Execute the circuit; returns the classical bit register.

        ``noise_model`` (a :class:`repro.noise.NoiseModel`) unravels
        each attached channel after its gate and corrupts recorded
        measurement bits through the model's readout confusion
        matrices; ``stats`` (a :class:`repro.noise.NoiseStats`)
        accumulates per-trajectory noise-event counts.
        ``channel_plan`` optionally supplies the per-instruction
        ``channels_for`` results precomputed by a caller running many
        trajectories of one circuit (rule matching is pure per
        instruction, so per-shot re-matching is wasted work).

        :class:`~repro.qcircuit.fusion.FusedUnitary` blocks execute as
        single sweeps; noise models attach channels by gate *name*, so
        fused blocks receive no channels — noisy runs should execute
        the unfused circuit (``simulate_kernel`` routes this
        automatically; see docs/performance.md).
        """
        for index, inst in enumerate(circuit.instructions):
            if isinstance(inst, CircuitGate):
                fired = True
                if inst.condition is not None:
                    bit, required = inst.condition
                    fired = self.bits[bit] == required
                self.apply_gate(inst)
                if fired and noise_model is not None:
                    applications = (
                        channel_plan[index]
                        if channel_plan is not None
                        else noise_model.channels_for(inst)
                    )
                    for channel, qubits in applications:
                        self.apply_kraus(channel.operators, qubits)
                        if stats is not None:
                            stats.channel_applications += 1
            elif isinstance(inst, FusedUnitary):
                self._apply_matrix(inst.matrix, inst.targets)
            elif isinstance(inst, Measurement):
                outcome = self.measure(inst.qubit)
                error = (
                    noise_model.readout_error_for(inst.qubit)
                    if noise_model is not None
                    else None
                )
                if error is not None:
                    flip_probability = (
                        error.p10 if outcome == 1 else error.p01
                    )
                    if self.rng.random() < flip_probability:
                        outcome ^= 1
                    if stats is not None:
                        stats.readout_applications += 1
                self.bits[inst.bit] = outcome
            elif isinstance(inst, Reset):
                self.reset(inst.qubit)
            else:
                raise SimulationError(f"unknown instruction {inst!r}")
        return list(self.bits)

    def statevector(self) -> np.ndarray:
        """The state as a flat 2^n vector (qubit 0 most significant)."""
        return self.state.reshape(-1)


def run_circuit(
    circuit: Circuit,
    shots: int = 1,
    seed: int = 0,
    backend: str | None = None,
    noise_model=None,
    parallel_workers: Optional[int] = None,
) -> list[tuple[int, ...]]:
    """Run ``shots`` executions of ``circuit``; returns output-bit tuples.

    ``backend`` names a registered simulation backend (see
    :mod:`repro.sim.backend` and docs/simulators.md).  ``None`` resolves
    to the one shared :data:`~repro.sim.backend.DEFAULT_BACKEND` — the
    vectorized ``"statevector"`` sampler — like every other execution
    entry point (``simulate_kernel``, ``kernel()``,
    ``interpret_module``).  Pass ``backend="interpreter"`` for one
    independent trajectory per shot seeded ``seed + shot``,
    ``noise_model`` (a :class:`repro.noise.NoiseModel`) to execute
    under noise (docs/noise.md), and ``parallel_workers`` to shard the
    shot chunks across a process pool with per-chunk derived seeds
    (:mod:`repro.exec`; deterministic per ``(seed, workers)``,
    docs/performance.md).
    """
    from repro.sim.backend import get_backend, run_circuit_with_info

    if parallel_workers is not None:
        results, _ = run_circuit_with_info(
            circuit,
            shots,
            seed,
            backend=backend,
            noise_model=noise_model,
            parallel_workers=parallel_workers,
        )
        return results
    resolved = get_backend(backend)
    if noise_model is None:
        # Not forwarded when unset, so backends predating the noise
        # subsystem keep serving ideal runs unchanged.
        return resolved.run(circuit, shots, seed)
    return resolved.run(circuit, shots, seed, noise_model=noise_model)


def apply_gates_to_state(
    gates: Sequence,
    num_qubits: int,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Apply a gate list to a statevector (default |0...0>).

    Accepts :class:`~repro.qcircuit.circuit.CircuitGate` and
    :class:`~repro.qcircuit.fusion.FusedUnitary` entries, so fused and
    unfused circuits can be compared through one helper.
    """
    sim = StatevectorSimulator(num_qubits)
    if initial is not None:
        if initial.size != 2**num_qubits:
            raise SimulationError("initial state has the wrong dimension")
        sim.state = np.array(initial, dtype=complex).reshape((2,) * num_qubits)
    for gate in gates:
        if isinstance(gate, FusedUnitary):
            sim.apply_unitary(gate.matrix, gate.targets)
        else:
            sim.apply_gate(gate)
    return sim.statevector()


def unitary_of_gates(
    gates: Sequence, num_qubits: int
) -> np.ndarray:
    """The full 2^n x 2^n unitary of a gate list (small n only)."""
    dim = 2**num_qubits
    if num_qubits > 10:
        raise SimulationError("unitary extraction limited to 10 qubits")
    unitary = np.zeros((dim, dim), dtype=complex)
    for column in range(dim):
        basis = np.zeros(dim, dtype=complex)
        basis[column] = 1.0
        unitary[:, column] = apply_gates_to_state(gates, num_qubits, basis)
    return unitary
