"""A dense statevector simulator for flat circuits.

The simulation engine under the pluggable backends of
:mod:`repro.sim.backend` (together, the reproduction's substitute for
qir-runner, paper §7): it executes the same circuits the backends emit,
including mid-circuit measurement, reset, classically conditioned
gates, and multi-controlled gates with arbitrary control polarity.
Gate matrices are cached per (name, params) and runs of adjacent
single-qubit gates can be fused (:func:`fuse_single_qubit_gates`)
before evolution.

Convention: qubit 0 is the *leftmost* qubit of a ket, matching the
position order of Qwerty qubit literals ('10' means qubit 0 is |1> and
qubit 1 is |0>), so basis state index ``x`` has qubit ``q`` equal to
bit ``(x >> (n - 1 - q)) & 1``.
"""

from __future__ import annotations

import cmath
import functools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset


def _build_gate_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    """The unitary matrix of a known 1- or 2-qubit gate."""
    inv_sqrt2 = 1.0 / math.sqrt(2.0)
    if name == "x":
        return np.array([[0, 1], [1, 0]], dtype=complex)
    if name == "y":
        return np.array([[0, -1j], [1j, 0]], dtype=complex)
    if name == "z":
        return np.array([[1, 0], [0, -1]], dtype=complex)
    if name == "h":
        return np.array([[1, 1], [1, -1]], dtype=complex) * inv_sqrt2
    if name == "s":
        return np.array([[1, 0], [0, 1j]], dtype=complex)
    if name == "sdg":
        return np.array([[1, 0], [0, -1j]], dtype=complex)
    if name == "t":
        return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
    if name == "tdg":
        return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
    if name == "sx":
        return 0.5 * np.array(
            [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
        )
    if name == "sxdg":
        return 0.5 * np.array(
            [[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex
        )
    if name == "p":
        return np.array([[1, 0], [0, cmath.exp(1j * params[0])]], dtype=complex)
    if name == "rx":
        half = params[0] / 2.0
        return np.array(
            [
                [math.cos(half), -1j * math.sin(half)],
                [-1j * math.sin(half), math.cos(half)],
            ],
            dtype=complex,
        )
    if name == "ry":
        half = params[0] / 2.0
        return np.array(
            [
                [math.cos(half), -math.sin(half)],
                [math.sin(half), math.cos(half)],
            ],
            dtype=complex,
        )
    if name == "rz":
        half = params[0] / 2.0
        return np.array(
            [
                [cmath.exp(-1j * half), 0],
                [0, cmath.exp(1j * half)],
            ],
            dtype=complex,
        )
    if name == "swap":
        return np.array(
            [
                [1, 0, 0, 0],
                [0, 0, 1, 0],
                [0, 1, 0, 0],
                [0, 0, 0, 1],
            ],
            dtype=complex,
        )
    raise SimulationError(f"no matrix for gate {name!r}")


@functools.lru_cache(maxsize=4096)
def _cached_gate_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    matrix = _build_gate_matrix(name, params)
    # Cached matrices are shared across every simulator in the process;
    # freeze them so no caller can corrupt the cache in place.
    matrix.setflags(write=False)
    return matrix


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """The (cached, read-only) unitary matrix of a known gate.

    Rotation angles participate in the cache key, so circuits built
    from a fixed gate set — e.g. after Selinger decomposition — pay the
    trigonometry once per distinct (name, params) pair rather than once
    per gate application.
    """
    return _cached_gate_matrix(name, tuple(params))


@functools.lru_cache(maxsize=4096)
def _axis_permutation(
    num_axes: int, targets: tuple[int, ...]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Cached (perm, inverse) moving ``targets`` to the leading axes."""
    rest = tuple(axis for axis in range(num_axes) if axis not in targets)
    perm = targets + rest
    inverse = tuple(int(axis) for axis in np.argsort(perm))
    return perm, inverse


def apply_matrix_inplace(
    state: np.ndarray, matrix: np.ndarray, targets: tuple[int, ...]
) -> None:
    """Apply a 2^k x 2^k ``matrix`` to ``state``'s target axes, in place.

    ``state`` is any complex array whose ``targets`` axes each have
    length 2; every other axis — including a leading shot axis in the
    batched engine, or the surviving axes of a control-sliced view —
    rides along in the matmul's column dimension.  The axis permutation
    is computed once per ``(ndim, targets)`` pair (LRU-cached), the
    permuted state is flattened to one ``(2^k, rest)`` block, and a
    single matmul applies the unitary before the inverse permutation
    writes the result back into ``state``'s own buffer.  This replaces
    the historical tensordot + moveaxis + copy-back sweep.
    """
    k = len(targets)
    perm, inverse = _axis_permutation(state.ndim, targets)
    permuted_shape = tuple(state.shape[axis] for axis in perm)
    block = state.transpose(perm).reshape(2**k, -1)
    updated = np.matmul(matrix, block)
    state[...] = updated.reshape(permuted_shape).transpose(inverse)


def control_sliced_view(
    state: np.ndarray,
    targets: tuple[int, ...],
    controls: tuple[int, ...],
    ctrl_states: tuple[int, ...],
    axis_offset: int = 0,
) -> tuple[np.ndarray, tuple[int, ...]]:
    """The control-sliced view of ``state`` plus renumbered target axes.

    Indexing each control qubit's axis at its required polarity yields
    the sub-array a controlled unitary acts on; the surviving target
    axes shrink by one for every removed control axis below them.
    ``axis_offset`` maps qubit numbers to array axes (0 for a bare
    statevector, 1 when axis 0 is the shot axis of a batch).  Shared by
    the single-shot simulator and the batched trajectory engine so
    control handling cannot diverge between them.
    """
    view = state
    if controls:
        index: list = [slice(None)] * state.ndim
        for qubit, required in zip(controls, ctrl_states):
            index[axis_offset + qubit] = required
        view = state[tuple(index)]
        removed = sorted(controls)
        targets = tuple(
            target - sum(1 for r in removed if r < target)
            for target in targets
        )
    return view, tuple(axis_offset + target for target in targets)


@dataclass(frozen=True)
class FusedGate:
    """One fused evolution step: a raw unitary on explicit qubits.

    Unlike :class:`~repro.qcircuit.circuit.CircuitGate`, the matrix is
    arbitrary — it may be the product of a whole run of adjacent
    single-qubit gates — so this form exists only inside the
    simulator's evolution loop, never in circuits.
    """

    matrix: np.ndarray
    targets: tuple[int, ...]
    controls: tuple[int, ...] = ()
    ctrl_states: tuple[int, ...] = ()


def fuse_single_qubit_gates(
    gates: Sequence[CircuitGate],
) -> list[FusedGate]:
    """Fuse runs of adjacent single-qubit gates into single unitaries.

    Uncontrolled single-qubit gates on the same qubit are accumulated
    into one 2x2 product until a multi-qubit or controlled gate touches
    that qubit; single-qubit gates on *different* qubits commute, so
    each qubit keeps its own pending product.  The result applies the
    same unitary as the input gate list with (usually far) fewer
    statevector sweeps.

    Classically conditioned gates are rejected: whether they apply
    depends on per-shot measurement outcomes, so their circuits must be
    executed as trajectories, not fused evolutions.
    """
    fused: list[FusedGate] = []
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is not None:
            fused.append(FusedGate(matrix, (qubit,)))

    for gate in gates:
        if gate.condition is not None:
            raise SimulationError(
                "cannot fuse classically conditioned gates; execute the "
                "circuit as per-shot trajectories instead"
            )
        matrix = gate_matrix(gate.name, gate.params)
        if not gate.controls and len(gate.targets) == 1:
            qubit = gate.targets[0]
            previous = pending.get(qubit)
            # New gate acts after the accumulated run: left-multiply.
            pending[qubit] = (
                matrix if previous is None else matrix @ previous
            )
        else:
            for qubit in gate.qubits:
                flush(qubit)
            fused.append(
                FusedGate(
                    matrix, gate.targets, gate.controls, gate.ctrl_states
                )
            )
    for qubit in sorted(pending):
        flush(qubit)
    return fused


class StatevectorSimulator:
    """Simulates a fixed number of qubits plus a classical bit register."""

    def __init__(self, num_qubits: int, num_bits: int = 0, seed: int = 0) -> None:
        if num_qubits > 24:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the dense-simulation limit"
            )
        self.num_qubits = num_qubits
        self.state = np.zeros((2,) * max(num_qubits, 1), dtype=complex)
        self.state[(0,) * max(num_qubits, 1)] = 1.0
        self.bits = [0] * num_bits
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Gate application.
    # ------------------------------------------------------------------
    def apply_gate(self, gate: CircuitGate) -> None:
        if gate.condition is not None:
            bit, required = gate.condition
            if self.bits[bit] != required:
                return
        matrix = gate_matrix(gate.name, gate.params)
        self._apply_matrix(matrix, gate.targets, gate.controls, gate.ctrl_states)

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[int, ...] = (),
        ctrl_states: tuple[int, ...] = (),
    ) -> None:
        """Apply a raw (possibly fused) unitary to explicit qubits."""
        dim = 2 ** len(targets)
        if matrix.shape != (dim, dim):
            raise SimulationError(
                f"unitary of shape {matrix.shape} does not act on "
                f"{len(targets)} qubit(s)"
            )
        self._apply_matrix(matrix, targets, controls, ctrl_states)

    def apply_fused(self, fused: Sequence[FusedGate]) -> None:
        """Apply a fused gate list (see :func:`fuse_single_qubit_gates`)."""
        for op in fused:
            self._apply_matrix(op.matrix, op.targets, op.controls, op.ctrl_states)

    def _apply_matrix(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[int, ...] = (),
        ctrl_states: tuple[int, ...] = (),
    ) -> None:
        view, axes = control_sliced_view(
            self.state, tuple(targets), controls, ctrl_states
        )
        apply_matrix_inplace(view, matrix, axes)

    # ------------------------------------------------------------------
    # Non-unitary operations.
    # ------------------------------------------------------------------
    def probability_one(self, qubit: int) -> float:
        index: list = [slice(None)] * self.num_qubits
        index[qubit] = 1
        return float(np.sum(np.abs(self.state[tuple(index)]) ** 2))

    def measure(self, qubit: int) -> int:
        p_one = self.probability_one(qubit)
        outcome = 1 if self.rng.random() < p_one else 0
        self._project(qubit, outcome, p_one)
        return outcome

    def _project(self, qubit: int, outcome: int, p_one: float) -> None:
        probability = p_one if outcome else 1.0 - p_one
        if probability <= 0.0:
            raise SimulationError("projection onto zero-probability outcome")
        index: list = [slice(None)] * self.num_qubits
        index[qubit] = 1 - outcome
        self.state[tuple(index)] = 0.0
        self.state /= math.sqrt(probability)

    def reset(self, qubit: int) -> None:
        outcome = self.measure(qubit)
        if outcome == 1:
            self.apply_gate(CircuitGate("x", (qubit,)))

    # ------------------------------------------------------------------
    # Stochastic Kraus unraveling (noise).
    # ------------------------------------------------------------------
    def apply_kraus(self, operators, targets) -> None:
        """Unravel one Kraus channel along this trajectory.

        Selects operator ``i`` with probability ``||K_i |psi>||^2``
        (one ``rng.random()`` draw, the same convention as
        :meth:`measure`) and collapses to the renormalized
        ``K_i |psi>``.  The single-shot twin of
        :meth:`repro.sim.batched.BatchedStatevector.apply_kraus`.
        """
        targets = tuple(targets)
        if len(operators) == 1:
            apply_matrix_inplace(self.state, operators[0], targets)
            return
        probabilities = []
        buffer = np.empty_like(self.state)
        for op in operators:
            buffer[...] = self.state
            apply_matrix_inplace(buffer, op, targets)
            probabilities.append(float(np.vdot(buffer, buffer).real))
        total = sum(probabilities)
        if total <= 0.0:
            raise SimulationError(
                "Kraus probabilities vanished (non-normalized state?)"
            )
        draw = self.rng.random() * total
        accumulated = 0.0
        chosen = len(operators) - 1
        for index, probability in enumerate(probabilities):
            accumulated += probability
            if draw < accumulated:
                chosen = index
                break
        apply_matrix_inplace(self.state, operators[chosen], targets)
        self.state /= math.sqrt(probabilities[chosen])

    # ------------------------------------------------------------------
    # Whole-circuit execution.
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        noise_model=None,
        stats=None,
        channel_plan=None,
    ) -> list[int]:
        """Execute the circuit; returns the classical bit register.

        ``noise_model`` (a :class:`repro.noise.NoiseModel`) unravels
        each attached channel after its gate and corrupts recorded
        measurement bits through the model's readout confusion
        matrices; ``stats`` (a :class:`repro.noise.NoiseStats`)
        accumulates per-trajectory noise-event counts.
        ``channel_plan`` optionally supplies the per-instruction
        ``channels_for`` results precomputed by a caller running many
        trajectories of one circuit (rule matching is pure per
        instruction, so per-shot re-matching is wasted work).
        """
        for index, inst in enumerate(circuit.instructions):
            if isinstance(inst, CircuitGate):
                fired = True
                if inst.condition is not None:
                    bit, required = inst.condition
                    fired = self.bits[bit] == required
                self.apply_gate(inst)
                if fired and noise_model is not None:
                    applications = (
                        channel_plan[index]
                        if channel_plan is not None
                        else noise_model.channels_for(inst)
                    )
                    for channel, qubits in applications:
                        self.apply_kraus(channel.operators, qubits)
                        if stats is not None:
                            stats.channel_applications += 1
            elif isinstance(inst, Measurement):
                outcome = self.measure(inst.qubit)
                error = (
                    noise_model.readout_error_for(inst.qubit)
                    if noise_model is not None
                    else None
                )
                if error is not None:
                    flip_probability = (
                        error.p10 if outcome == 1 else error.p01
                    )
                    if self.rng.random() < flip_probability:
                        outcome ^= 1
                    if stats is not None:
                        stats.readout_applications += 1
                self.bits[inst.bit] = outcome
            elif isinstance(inst, Reset):
                self.reset(inst.qubit)
            else:
                raise SimulationError(f"unknown instruction {inst!r}")
        return list(self.bits)

    def statevector(self) -> np.ndarray:
        """The state as a flat 2^n vector (qubit 0 most significant)."""
        return self.state.reshape(-1)


def run_circuit(
    circuit: Circuit,
    shots: int = 1,
    seed: int = 0,
    backend: str | None = None,
    noise_model=None,
) -> list[tuple[int, ...]]:
    """Run ``shots`` executions of ``circuit``; returns output-bit tuples.

    ``backend`` names a registered simulation backend (see
    :mod:`repro.sim.backend` and docs/simulators.md).  ``None`` resolves
    to the one shared :data:`~repro.sim.backend.DEFAULT_BACKEND` — the
    vectorized ``"statevector"`` sampler — like every other execution
    entry point (``simulate_kernel``, ``kernel()``,
    ``interpret_module``).  Pass ``backend="interpreter"`` for one
    independent trajectory per shot seeded ``seed + shot``, and
    ``noise_model`` (a :class:`repro.noise.NoiseModel`) to execute
    under noise (docs/noise.md).
    """
    from repro.sim.backend import get_backend

    resolved = get_backend(backend)
    if noise_model is None:
        # Not forwarded when unset, so backends predating the noise
        # subsystem keep serving ideal runs unchanged.
        return resolved.run(circuit, shots, seed)
    return resolved.run(circuit, shots, seed, noise_model=noise_model)


def apply_gates_to_state(
    gates: Sequence[CircuitGate],
    num_qubits: int,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Apply a gate list to a statevector (default |0...0>)."""
    sim = StatevectorSimulator(num_qubits)
    if initial is not None:
        if initial.size != 2**num_qubits:
            raise SimulationError("initial state has the wrong dimension")
        sim.state = np.array(initial, dtype=complex).reshape((2,) * num_qubits)
    for gate in gates:
        sim.apply_gate(gate)
    return sim.statevector()


def unitary_of_gates(
    gates: Sequence[CircuitGate], num_qubits: int
) -> np.ndarray:
    """The full 2^n x 2^n unitary of a gate list (small n only)."""
    dim = 2**num_qubits
    if num_qubits > 10:
        raise SimulationError("unitary extraction limited to 10 qubits")
    unitary = np.zeros((dim, dim), dtype=complex)
    for column in range(dim):
        basis = np.zeros(dim, dtype=complex)
        basis[column] = 1.0
        unitary[:, column] = apply_gates_to_state(gates, num_qubits, basis)
    return unitary
