"""A QCircuit-dialect IR interpreter (the qir-runner analogue for the
Unrestricted profile).

Executes a lowered module *without* requiring inlining: direct calls
run callee bodies, and callable values (``callable_create`` /
``callable_invoke``) are interpreted as closures over function symbols
with adjoint/controlled markers — the runtime dual of the QIR callables
API (paper §7).  This lets the "Asdf (No Opt)" configuration of Table 1
actually execute, demonstrating that disabling inlining preserves
program semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dialects import arith, qcircuit, qwerty, scf
from repro.errors import QwertyError, SimulationError
from repro.ir.core import Operation, Value
from repro.ir.module import FuncOp, ModuleOp
from repro.qcircuit.circuit import CircuitGate


@dataclass(frozen=True)
class _Callable:
    """A runtime callable value: a symbol plus functor markers."""

    symbol: str
    adjoint: bool = False
    controls: int = 0


class ModuleInterpreter:
    """Interprets one entry-point invocation of a lowered module.

    ``backend`` names a registered simulation backend (see
    :mod:`repro.sim.backend`); the interpreter asks it for a
    step-by-step simulator.  Module interpretation is inherently
    trajectory-based (op-at-a-time, with data-dependent control flow),
    so vectorized shot sampling never applies here — the backend only
    chooses the simulator implementation.
    """

    def __init__(
        self,
        module: ModuleOp,
        num_qubits: int = 20,
        seed: int = 0,
        backend: str | None = None,
    ):
        from repro.sim.backend import get_backend

        self.module = module
        self.simulator = get_backend(backend).make_simulator(
            num_qubits, 0, seed=seed
        )
        self._free = list(range(num_qubits))
        self._gate_log: list[CircuitGate] = []

    # ------------------------------------------------------------------
    def run(self, entry: str | None = None) -> list[int]:
        entry = entry or self.module.entry_point
        if entry is None:
            raise SimulationError("no entry point")
        results = self._call_function(self.module.get(entry), [])
        bits: list[int] = []

        def collect(value) -> None:
            if isinstance(value, list):
                for item in value:
                    collect(item)
            elif isinstance(value, int):
                bits.append(value)

        collect(results)
        return bits

    # ------------------------------------------------------------------
    def _alloc(self) -> int:
        if not self._free:
            raise SimulationError("interpreter ran out of qubits")
        return self._free.pop()

    def _call_function(self, func: FuncOp, args: list):
        env: dict[int, object] = {}
        for arg, value in zip(func.entry.args, args):
            env[id(arg)] = value
        returned = self._run_block(func.entry.ops, env)
        return returned

    def _run_block(self, ops, env: dict[int, object]):
        for op in ops:
            if op.name in (qwerty.RETURN, scf.YIELD):
                return [env[id(v)] for v in op.operands]
            try:
                self._step(op, env)
            except QwertyError as error:
                # Runtime failures point at the Qwerty expression whose
                # op was executing.
                raise error.attach_span(op.loc)
        return []

    def _step(self, op: Operation, env: dict[int, object]) -> None:
        name = op.name
        get = lambda v: env[id(v)]  # noqa: E731

        if name == qcircuit.QALLOC:
            env[id(op.result)] = self._alloc()
        elif name in (qcircuit.QFREE, qcircuit.QFREEZ):
            qubit = get(op.operands[0])
            if name == qcircuit.QFREE:
                self.simulator.reset(qubit)
            self._free.append(qubit)
        elif name == qcircuit.GATE:
            num_controls = op.attrs["num_controls"]
            physical = [get(v) for v in op.operands]
            gate = CircuitGate(
                op.attrs["gate"],
                tuple(physical[num_controls:]),
                tuple(physical[:num_controls]),
                op.attrs["params"],
                op.attrs["ctrl_states"],
            )
            self.simulator.apply_gate(gate)
            self._gate_log.append(gate)
            for result, qubit in zip(op.results, physical):
                env[id(result)] = qubit
        elif name == qcircuit.MEASURE:
            qubit = get(op.operands[0])
            outcome = self.simulator.measure(qubit)
            env[id(op.results[0])] = qubit
            env[id(op.results[1])] = outcome
        elif name == qcircuit.ARRPACK:
            env[id(op.result)] = [get(v) for v in op.operands]
        elif name == qcircuit.ARRUNPACK:
            values = get(op.operands[0])
            for result, value in zip(op.results, values):
                env[id(result)] = value
        elif name == qcircuit.CALL:
            callee = self.module.get(op.attrs["callee"])
            results = self._call_function(
                callee, [get(v) for v in op.operands]
            )
            for result, value in zip(op.results, results):
                env[id(result)] = value
        elif name == qcircuit.CALLABLE_CREATE:
            env[id(op.result)] = _Callable(op.attrs["callee"])
        elif name == qcircuit.CALLABLE_ADJOINT:
            fn = get(op.operands[0])
            env[id(op.result)] = replace(fn, adjoint=not fn.adjoint)
        elif name == qcircuit.CALLABLE_CONTROL:
            fn = get(op.operands[0])
            env[id(op.result)] = replace(fn, controls=fn.controls + 1)
        elif name == qcircuit.CALLABLE_INVOKE:
            fn = get(op.operands[0])
            if fn.adjoint or fn.controls:
                raise SimulationError(
                    "adjoint/controlled callables require generated "
                    "specializations, which the 'specialize' pass of the "
                    "'default' pipeline preset produces; compile with "
                    "pipeline='default' (or CompileOptions.preset"
                    "('default')) instead of 'no-opt'"
                )
            callee = self.module.get(fn.symbol)
            results = self._call_function(
                callee, [get(v) for v in op.operands[1:]]
            )
            for result, value in zip(op.results, results):
                env[id(result)] = value
        elif name == arith.CONSTANT:
            env[id(op.result)] = op.attrs["value"]
        elif name in arith.STATIONARY_OPS:
            values = [get(v) for v in op.operands]
            fold = {
                arith.ADDF: lambda a, b: a + b,
                arith.SUBF: lambda a, b: a - b,
                arith.MULF: lambda a, b: a * b,
                arith.DIVF: lambda a, b: a / b,
                arith.NEGF: lambda a: -a,
            }[name]
            env[id(op.result)] = fold(*values)
        elif name == scf.IF:
            condition = get(op.operands[0])
            block = (
                scf.then_block(op) if condition else scf.else_block(op)
            )
            results = self._run_block(block.ops, env)
            for result, value in zip(op.results, results):
                env[id(result)] = value
        else:
            raise SimulationError(f"cannot interpret op {name}")


def interpret_module(
    module: ModuleOp,
    entry: str | None = None,
    num_qubits: int = 20,
    seed: int = 0,
    backend: str | None = None,
) -> list[int]:
    """Execute a lowered module; returns the measured output bits.

    ``backend`` selects the simulation backend supplying the simulator
    (see :mod:`repro.sim.backend`).
    """
    return ModuleInterpreter(module, num_qubits, seed, backend).run(entry)
