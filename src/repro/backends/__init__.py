"""Output backends: OpenQASM 3 and QIR (paper §7)."""

from repro.backends.qasm3 import emit_qasm3
from repro.backends.qir import count_callable_intrinsics, emit_qir

__all__ = ["count_callable_intrinsics", "emit_qasm3", "emit_qir"]
