"""OpenQASM 3 emission (paper §7).

Produced from the flat circuit (the reg2mem form): SSA values have
already become quantum register accesses.  OpenQASM 3 does not support
function pointers or qubit allocation inside subroutines, so this
backend requires inlining to have succeeded — which the flat circuit
guarantees by construction.
"""

from __future__ import annotations

from io import StringIO

from repro.errors import BackendError
from repro.parameters import is_symbolic
from repro.qcircuit.circuit import (
    Circuit,
    CircuitGate,
    Measurement,
    Reset,
    circuit_parameters,
)

#: Gate spellings in the OpenQASM 3 standard library ("stdgates.inc").
_QASM_NAMES = {
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "s",
    "sdg": "sdg",
    "t": "t",
    "tdg": "tdg",
    "sx": "sx",
    "p": "p",
    "rx": "rx",
    "ry": "ry",
    "rz": "rz",
    "swap": "swap",
}


def _gate_call(gate: CircuitGate) -> str:
    name = _QASM_NAMES.get(gate.name)
    if name is None:
        if gate.name == "sxdg":
            # Not in stdgates: spell as inv-modified sx.
            name = "inv @ sx"
        else:
            raise BackendError(f"no OpenQASM spelling for gate {gate.name!r}")

    prefix = ""
    if gate.controls:
        neg = sum(1 for s in gate.ctrl_states if s == 0)
        pos = len(gate.controls) - neg
        mods = []
        if pos:
            mods.append(f"ctrl({pos}) @" if pos > 1 else "ctrl @")
        if neg:
            mods.append(f"negctrl({neg}) @" if neg > 1 else "negctrl @")
        prefix = " ".join(mods) + " "

    params = ""
    if gate.params:
        # Symbolic params print as OpenQASM 3 expressions over the
        # program's `input float` parameters (ParamExpr.__str__ is
        # QASM-compatible: "2*theta + 0.5").
        params = "(" + ", ".join(
            str(p) if is_symbolic(p) else f"{p:.12g}" for p in gate.params
        ) + ")"

    # Operand order: positive controls, negative controls, targets.
    positives = [q for q, s in zip(gate.controls, gate.ctrl_states) if s == 1]
    negatives = [q for q, s in zip(gate.controls, gate.ctrl_states) if s == 0]
    operands = ", ".join(
        f"q[{q}]" for q in positives + negatives + list(gate.targets)
    )
    return f"{prefix}{name}{params} {operands};"


def emit_qasm3(
    circuit: Circuit, name: str = "kernel", source_comments: bool = False
) -> str:
    """Render the circuit as an OpenQASM 3 program.

    ``source_comments=True`` appends ``// line N`` provenance comments
    mapping each instruction back to the Qwerty source line it lowered
    from (instructions with unknown provenance get no comment).  The
    comment only changes when the line changes, so runs of gates from
    one expression stay readable.
    """
    out = StringIO()
    out.write("OPENQASM 3.0;\n")
    out.write('include "stdgates.inc";\n')
    out.write(f"// kernel: {name}\n")
    # Unbound symbolic parameters become OpenQASM 3 runtime inputs.
    for param in circuit_parameters(circuit):
        out.write(f"input float {param.name};\n")
    if circuit.num_qubits:
        out.write(f"qubit[{circuit.num_qubits}] q;\n")
    if circuit.num_bits:
        out.write(f"bit[{circuit.num_bits}] c;\n")
    last_line: int | None = None
    for inst in circuit.instructions:
        if isinstance(inst, CircuitGate):
            line = _gate_call(inst)
            if inst.condition is not None:
                bit, value = inst.condition
                line = f"if (c[{bit}] == {value}) {{ {line} }}"
        elif isinstance(inst, Measurement):
            line = f"c[{inst.bit}] = measure q[{inst.qubit}];"
        elif isinstance(inst, Reset):
            line = f"reset q[{inst.qubit}];"
        else:
            raise BackendError(f"unknown instruction {inst!r}")
        if source_comments:
            loc = inst.loc
            if loc is not None and not loc.is_unknown and loc.line != last_line:
                line += f"  // line {loc.line}"
                last_line = loc.line
        out.write(line + "\n")
    return out.getvalue()


def parse_qasm3(text: str) -> Circuit:
    """Parse the subset of OpenQASM 3 this backend emits (round-trip
    support, used by tests and the baseline pipeline)."""
    import re

    num_qubits = 0
    num_bits = 0
    circuit = Circuit(0, 0)
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if "//" in line:
            # Drop trailing provenance comments (emit_qasm3's
            # source_comments mode); full-comment lines become empty.
            line = line.split("//", 1)[0].rstrip()
        if not line or line.startswith("OPENQASM"):
            continue
        if line.startswith("include"):
            continue
        match = re.match(r"qubit\[(\d+)\] q;", line)
        if match:
            num_qubits = int(match.group(1))
            continue
        match = re.match(r"bit\[(\d+)\] c;", line)
        if match:
            num_bits = int(match.group(1))
            continue
        condition = None
        cond_match = re.match(r"if \(c\[(\d+)\] == (\d)\) \{ (.*) \}", line)
        if cond_match:
            condition = (int(cond_match.group(1)), int(cond_match.group(2)))
            line = cond_match.group(3)
        match = re.match(r"c\[(\d+)\] = measure q\[(\d+)\];", line)
        if match:
            circuit.add(Measurement(int(match.group(2)), int(match.group(1))))
            continue
        match = re.match(r"reset q\[(\d+)\];", line)
        if match:
            circuit.add(Reset(int(match.group(1))))
            continue
        circuit.add(_parse_gate_line(line, condition))
    circuit.num_qubits = num_qubits
    circuit.num_bits = num_bits
    return circuit


def _parse_gate_line(line: str, condition):
    import re

    pos_controls = 0
    neg_controls = 0
    rest = line
    while True:
        match = re.match(r"ctrl(\((\d+)\))? @ (.*)", rest)
        if match:
            pos_controls += int(match.group(2) or 1)
            rest = match.group(3)
            continue
        match = re.match(r"negctrl(\((\d+)\))? @ (.*)", rest)
        if match:
            neg_controls += int(match.group(2) or 1)
            rest = match.group(3)
            continue
        break
    match = re.match(r"([a-z]+)(\(([^)]*)\))? (.*);", rest)
    if not match:
        raise BackendError(f"cannot parse gate line: {line!r}")
    name = match.group(1)
    params = tuple(
        float(p) for p in match.group(3).split(",")
    ) if match.group(3) else ()
    qubits = [
        int(q) for q in re.findall(r"q\[(\d+)\]", match.group(4))
    ]
    total_controls = pos_controls + neg_controls
    controls = tuple(qubits[:total_controls])
    states = (1,) * pos_controls + (0,) * neg_controls
    targets = tuple(qubits[total_controls:])
    return CircuitGate(name, targets, controls, params, states, condition)
