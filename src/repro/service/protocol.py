"""The execution service's wire protocol: JSON lines, validated.

One request per line, one response per line, both UTF-8 JSON objects —
trivially scriptable (``nc``, ``asyncio.open_connection``, a browser
behind any JSON bridge) and streaming-friendly (responses may
interleave across in-flight requests; match them by ``id``).

Request fields (``op: "run"``, the default)::

    {"id": 1, "op": "run",
     "kernel": "bv",            # evaluation-suite algorithm name, or
     "source": "...",           # Python source defining one @qpu kernel
     "n": 8,                    # dims for algorithm kernels
     "preset": "default",       # compile pipeline preset
     "backend": "statevector",  # simulation backend name (optional)
     "noise": {"depolarizing": 0.01},   # channel name -> parameter
     "shots": 256, "seed": 0,
     "priority": 5,             # lower runs sooner
     "deadline": 10.0,          # seconds, capped by the server
     "workers": 2}              # shot-sharding worker count

``op: "health"`` and ``op: "stats"`` take no other fields.  Responses
are ``{"id", "ok": true, "result": {...}}`` or ``{"id", "ok": false,
"error": {"code", "message", "retryable", "rendered"}}`` where
``code`` is the stable ``QWnnn`` diagnostic code (``QW601`` shed,
``QW602`` deadline, ``QW603`` retry budget, ``QW604`` bad request,
``QW605`` draining — see docs/diagnostics.md) and ``rendered`` is the
full rustc-style caret rendering when one exists.

Validation happens here, once, for both transports (TCP and the
in-process :class:`~repro.service.service.ServiceClient`): a malformed
payload becomes a :class:`~repro.errors.BadRequestError` before any
queueing or compute is spent on it.  ``source`` kernels are exec'd
with the full ``repro`` DSL namespace — the service trusts its
clients (it is an internal execution tier, not a public sandbox), and
docs/service.md says so explicitly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.errors import BadRequestError, QwertyError

#: Operations the service understands.  ``metrics`` returns the
#: process-wide registry as Prometheus text exposition
#: (docs/observability.md).
OPS = ("run", "health", "stats", "metrics")

#: Hard ceiling on per-request shots (one request must never occupy
#: the executor for unbounded time; split larger sweeps client-side).
MAX_SHOTS = 1 << 20

#: Noise-channel vocabulary: request ``noise`` keys map to the
#: single-parameter constructors in :mod:`repro.noise`.
NOISE_CHANNELS = (
    "bit_flip",
    "phase_flip",
    "bit_phase_flip",
    "depolarizing",
    "amplitude_damping",
    "phase_damping",
)


@dataclass
class RunRequest:
    """One validated ``op: "run"`` request."""

    id: Any = None
    kernel: Optional[str] = None
    source: Optional[str] = None
    n: int = 4
    preset: str = "default"
    backend: Optional[str] = None
    noise: Optional[Mapping[str, float]] = None
    shots: int = 256
    seed: int = 0
    priority: int = 5
    deadline: Optional[float] = None
    workers: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunRequest":
        request = cls(
            id=payload.get("id"),
            kernel=payload.get("kernel"),
            source=payload.get("source"),
            n=_int_field(payload, "n", 4, minimum=1),
            preset=str(payload.get("preset", "default")),
            backend=payload.get("backend"),
            noise=payload.get("noise"),
            shots=_int_field(payload, "shots", 256, minimum=1),
            seed=_int_field(payload, "seed", 0),
            priority=_int_field(payload, "priority", 5),
            deadline=_float_field(payload, "deadline"),
            workers=_opt_int_field(payload, "workers", minimum=1),
        )
        if (request.kernel is None) == (request.source is None):
            raise BadRequestError(
                "a run request names exactly one of 'kernel' (an "
                "evaluation-suite algorithm) or 'source' (Python source "
                "defining one @qpu kernel)"
            )
        if request.shots > MAX_SHOTS:
            raise BadRequestError(
                f"shots={request.shots} exceeds the per-request ceiling "
                f"of {MAX_SHOTS}; split the sweep across requests"
            )
        if request.noise is not None:
            if not isinstance(request.noise, Mapping):
                raise BadRequestError(
                    "'noise' must be an object of channel-name -> "
                    "parameter, e.g. {\"depolarizing\": 0.01}"
                )
            for name in request.noise:
                if name not in NOISE_CHANNELS:
                    raise BadRequestError(
                        f"unknown noise channel {name!r} (known: "
                        f"{', '.join(NOISE_CHANNELS)})"
                    )
        return request


def _int_field(payload, key, default, minimum=None) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"{key!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise BadRequestError(f"{key!r} must be >= {minimum}, got {value}")
    return value


def _opt_int_field(payload, key, minimum=None) -> Optional[int]:
    if payload.get(key) is None:
        return None
    return _int_field(payload, key, None, minimum=minimum)


def _float_field(payload, key) -> Optional[float]:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"{key!r} must be a number, got {value!r}")
    if value <= 0:
        raise BadRequestError(f"{key!r} must be > 0, got {value}")
    return float(value)


def parse_request(line: "str | bytes") -> dict:
    """One wire line -> payload dict (``BadRequestError`` on garbage)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise BadRequestError(
            f"request is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise BadRequestError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op", "run")
    if op not in OPS:
        raise BadRequestError(
            f"unknown op {op!r} (known: {', '.join(OPS)})"
        )
    return payload


def ok_response(request_id: Any, result: Mapping[str, Any]) -> dict:
    return {"id": request_id, "ok": True, "result": dict(result)}


def error_response(request_id: Any, error: Exception) -> dict:
    """The structured error envelope for any exception.

    :class:`QwertyError` subclasses keep their stable code and caret
    rendering; anything else (a genuine bug) is reported as QW000 so
    the client still gets a well-formed response — and the server log,
    not the wire, carries the traceback.
    """
    if isinstance(error, QwertyError):
        payload = {
            "code": error.code,
            "message": error.message,
            "retryable": bool(getattr(error, "retryable", False)),
            "rendered": error.render(),
        }
    else:
        payload = {
            "code": "QW000",
            "message": f"internal error: {type(error).__name__}: {error}",
            "retryable": False,
            "rendered": "",
        }
    return {"id": request_id, "ok": False, "error": payload}


def encode_response(response: Mapping[str, Any]) -> bytes:
    """One response dict -> one wire line (newline-terminated JSON)."""
    return (json.dumps(response, sort_keys=True) + "\n").encode()


def counts_of(results) -> dict[str, int]:
    """Sampled bit tuples -> {"0101": count} histogram for the wire."""
    counts: dict[str, int] = {}
    for outcome in results:
        key = "".join(str(int(b)) for b in outcome)
        counts[key] = counts.get(key, 0) + 1
    return counts
