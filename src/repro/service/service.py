"""The fault-tolerant async execution engine (transport-agnostic).

:class:`ExecutionService` is the whole service except the socket: the
TCP front end (:mod:`repro.service.server`) and the in-process
:class:`ServiceClient` both drive the same ``submit()``, so every
robustness property below is testable without binding a port.

Robustness model
----------------
- **Backpressure, not collapse.**  Admission is a bounded
  :class:`asyncio.PriorityQueue`; when it is full the request is shed
  *immediately* with ``QW601`` (the 429 of this protocol) instead of
  growing an unbounded backlog whose every entry will miss its
  deadline anyway.  Clients retry with backoff; the queue bound is the
  knob that converts overload into explicit, observable shedding.
- **Deadlines end-to-end.**  Every request carries one (default and
  ceiling from :class:`ServiceConfig`), measured from *admission*, so
  queue wait counts against it.  Expiry anywhere — still queued, or
  mid-execution via :func:`asyncio.timeout` — produces ``QW602`` and
  sets the request's cancel event, which the retry layer honors
  between chunk waves by cancelling pool futures: the deadline
  actually stops the work instead of abandoning a zombie computation.
- **Retries with a budget.**  Chunk execution goes through
  :mod:`repro.exec.retry`; transient faults (crashes, hangs, pool
  breakage) are absorbed and reported in ``RunInfo.retries`` /
  ``faults_injected``, exhaustion surfaces as ``QW603``.
- **Graceful degradation.**  A run that had to recycle broken pools
  flags itself ``degraded``; after ``degrade_runs`` consecutive
  degraded runs the service pins itself to serial in-process execution
  (slow but alive) until :meth:`ExecutionService.reset_degradation`.
- **Graceful drain.**  :meth:`drain` stops admission (``QW605``),
  lets queued work finish within ``drain_timeout``, then cancels
  workers and shuts the thread pool down.

Every outcome increments a counter surfaced by ``op: "stats"`` —
queue depth, shed/deadline/retry totals, per-code error counts, and
the compile cache's hit rates — because a service whose failure modes
are invisible is a service whose failure modes are unhandled.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import (
    BadRequestError,
    DeadlineExceededError,
    QueueFullError,
    QwertyError,
    ServiceUnavailableError,
)
from repro.exec.faults import FaultPlan, active_fault_plan, inject_faults
from repro.exec.retry import RetryPolicy
from repro.obs import logging as obslog
from repro.obs import metrics as obs_metrics
from repro.obs import trace as tracing
from repro.service import protocol

#: Sequential per-process instance labels: two services in one test
#: process (or a restarted one) get distinct series, so per-instance
#: counts reconcile exactly with each instance's ``stats()``.
_INSTANCE_SEQ = itertools.count(1)

#: The lifecycle counter vocabulary ``stats()`` reports; each key is
#: one ``event`` label value on :data:`_EVENTS` — the registry is the
#: single counting substrate, ``stats()`` a derived view of it.
_COUNTER_EVENTS = (
    "received",
    "accepted",
    "completed",
    "shed",
    "deadline_exceeded",
    "failed",
    "retries",
    "faults_injected",
    "degraded_runs",
)

_EVENTS = obs_metrics.counter(
    "repro_service_events_total",
    "Request lifecycle events by service instance and event",
    labels=("service", "event"),
)
_ERRORS = obs_metrics.counter(
    "repro_service_errors_total",
    "Error responses by service instance and error code",
    labels=("service", "code"),
)
_QUEUE_DEPTH = obs_metrics.gauge(
    "repro_service_queue_depth",
    "Requests currently waiting in the admission queue",
    labels=("service",),
)
_LATENCY = obs_metrics.histogram(
    "repro_service_request_seconds",
    "End-to-end run-request latency, admission to completion",
    labels=("service",),
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`ExecutionService`.

    ``queue_limit`` bounds admission (beyond it: ``QW601`` shedding);
    ``executors`` is how many requests execute concurrently (each gets
    one thread driving the chunk dispatcher); ``parallel_workers`` /
    ``use_processes`` configure per-run shot sharding;
    ``default_deadline`` / ``max_deadline`` are seconds;
    ``retry`` bounds per-chunk recovery; ``degrade_runs`` is how many
    consecutive degraded runs pin the service to serial execution;
    ``fault_plan`` forces a fault plan for every request (benchmarks —
    normally the ambient plan from :mod:`repro.exec.faults` applies).
    """

    queue_limit: int = 64
    executors: int = 2
    parallel_workers: int = 2
    use_processes: bool = True
    default_deadline: float = 30.0
    max_deadline: float = 300.0
    drain_timeout: float = 10.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degrade_runs: int = 2
    fault_plan: Optional[FaultPlan] = None


@dataclass
class _Work:
    """One admitted run request, in flight between queue and executor.

    ``trace`` carries the submitting request span's context: the
    worker loop and the executor thread both run outside the
    submitter's contextvar context, so they re-attach it explicitly
    (:func:`repro.obs.trace.attached`) and their spans land under the
    same ``service.request`` span.
    """

    request: protocol.RunRequest
    future: "asyncio.Future[dict]"
    admitted_at: float
    deadline: float
    cancel_event: threading.Event
    fault_plan: Optional[FaultPlan]
    trace: Optional[tracing.TraceContext] = None


class ExecutionService:
    """The asyncio execution service core.  Use as an async context
    manager, or call :meth:`start` / :meth:`drain` explicitly."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self._queue: "asyncio.PriorityQueue" = asyncio.PriorityQueue(
            maxsize=self.config.queue_limit
        )
        self._seq = 0
        self._workers: list[asyncio.Task] = []
        self._threads: Optional[ThreadPoolExecutor] = None
        self._draining = False
        self._started = False
        self._started_at = 0.0
        self._in_flight = 0
        self._consecutive_degraded = 0
        self._serial_mode = False
        self._label = str(next(_INSTANCE_SEQ))

    # ------------------------------------------------------------------
    # Counting (one substrate: the repro.obs.metrics registry).
    # ------------------------------------------------------------------
    def _count(self, event: str, amount: int = 1) -> None:
        _EVENTS.inc(amount, service=self._label, event=event)

    def _note_queue_depth(self) -> None:
        _QUEUE_DEPTH.set(self._queue.qsize(), service=self._label)

    @property
    def counters(self) -> dict[str, int]:
        """Lifecycle counters, derived from the metrics registry — the
        same series ``op: "metrics"`` exposes, so the two can never
        disagree."""
        return {
            event: int(_EVENTS.value(service=self._label, event=event))
            for event in _COUNTER_EVENTS
        }

    @property
    def error_codes(self) -> dict[str, int]:
        """Per-code error counts for this instance, registry-derived."""
        return {
            key[1]: int(value)
            for key, value in sorted(_ERRORS.series().items())
            if key[0] == self._label
        }

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> "ExecutionService":
        if self._started:
            return self
        self._started = True
        self._started_at = time.monotonic()
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.executors,
            thread_name_prefix="repro-service",
        )
        for index in range(self.config.executors):
            self._workers.append(
                asyncio.create_task(
                    self._worker_loop(), name=f"repro-service-{index}"
                )
            )
        return self

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish queued work (up to
        ``drain_timeout``), then tear down workers and threads."""
        self._draining = True
        try:
            await asyncio.wait_for(
                self._queue.join(), timeout=self.config.drain_timeout
            )
        except asyncio.TimeoutError:
            pass  # whatever is still queued gets cancelled below
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        if self._threads is not None:
            self._threads.shutdown(wait=True, cancel_futures=True)
            self._threads = None
        while not self._queue.empty():
            # Anything admitted but never executed: fail it explicitly
            # rather than leaving its future forever pending.
            _, _, work = self._queue.get_nowait()
            self._queue.task_done()
            if not work.future.done():
                work.future.set_result(
                    self._error(
                        work.request.id,
                        ServiceUnavailableError(
                            "service drained before this request ran"
                        ),
                    )
                )

    async def __aenter__(self) -> "ExecutionService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------
    async def submit(self, payload: dict) -> dict:
        """One request in, one response out; never raises.

        ``payload`` is a parsed wire object (see
        :mod:`repro.service.protocol`).  Validation failures, shedding,
        deadline misses, and execution errors all come back as
        structured error responses.
        """
        self._count("received")
        request_id = payload.get("id") if isinstance(payload, dict) else None
        try:
            op = payload.get("op", "run")
            if op == "health":
                return protocol.ok_response(request_id, self.health())
            if op == "stats":
                return protocol.ok_response(request_id, self.stats())
            if op == "metrics":
                return protocol.ok_response(request_id, self.metrics())
        except Exception as error:  # noqa: BLE001 — the wire gets it all
            return self._error(request_id, error)
        bind = (
            obslog.bound_request(request_id)
            if request_id is not None
            else nullcontext()
        )
        with tracing.span(
            "service.request", request_id=request_id, service=self._label
        ) as span, bind:
            try:
                request = protocol.RunRequest.from_payload(payload)
                if self._draining or not self._started:
                    raise ServiceUnavailableError(
                        "service is draining and accepts no new requests"
                        if self._draining
                        else "service is not started"
                    )
                deadline = min(
                    request.deadline or self.config.default_deadline,
                    self.config.max_deadline,
                )
                work = _Work(
                    request=request,
                    future=asyncio.get_running_loop().create_future(),
                    admitted_at=time.monotonic(),
                    deadline=deadline,
                    cancel_event=threading.Event(),
                    fault_plan=(
                        self.config.fault_plan or active_fault_plan()
                    ),
                    trace=tracing.current_context(),
                )
                self._seq += 1
                try:
                    self._queue.put_nowait(
                        (request.priority, self._seq, work)
                    )
                except asyncio.QueueFull:
                    self._count("shed")
                    raise QueueFullError(
                        f"admission queue full "
                        f"({self.config.queue_limit} requests); retry "
                        f"with backoff"
                    ) from None
                self._note_queue_depth()
                self._count("accepted")
                response = await work.future
            except Exception as error:  # noqa: BLE001
                response = self._error(request_id, error)
            span.set(
                outcome=response["error"]["code"]
                if "error" in response
                else "done"
            )
            return response

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            _, _, work = await self._queue.get()
            self._note_queue_depth()
            try:
                response = await self._process(work)
            except asyncio.CancelledError:
                if not work.future.done():
                    work.future.set_result(
                        self._error(
                            work.request.id,
                            ServiceUnavailableError(
                                "service shut down mid-request"
                            ),
                        )
                    )
                raise
            except Exception as error:  # noqa: BLE001
                response = self._error(work.request.id, error)
            finally:
                self._queue.task_done()
            if not work.future.done():
                work.future.set_result(response)

    async def _process(self, work: _Work) -> dict:
        # The worker task's contextvar context is not the submitter's:
        # re-attach the request span so dequeue events and downstream
        # spans stitch under it.
        with tracing.attached(work.trace):
            return await self._process_attached(work)

    async def _process_attached(self, work: _Work) -> dict:
        request = work.request
        queued_s = time.monotonic() - work.admitted_at
        tracing.event("service.dequeue", queued_s=round(queued_s, 6))
        remaining = work.deadline - queued_s
        if remaining <= 0:
            # Expired while queued: never spend compute on it.
            self._count("deadline_exceeded")
            return self._error(
                request.id,
                DeadlineExceededError(
                    f"deadline of {work.deadline:.3f}s elapsed while "
                    f"queued"
                ),
            )
        loop = asyncio.get_running_loop()
        self._in_flight += 1
        try:
            # asyncio.wait_for rather than asyncio.timeout: identical
            # semantics here, and it exists on Python 3.10 (the oldest
            # version CI supports).
            result = await asyncio.wait_for(
                loop.run_in_executor(
                    self._threads, self._execute_sync, work
                ),
                timeout=remaining,
            )
        except asyncio.TimeoutError:
            # Cooperative cancellation: the retry layer checks the
            # event between chunk waves and cancels pool futures.
            work.cancel_event.set()
            self._count("deadline_exceeded")
            return self._error(
                request.id,
                DeadlineExceededError(
                    f"deadline of {work.deadline:.3f}s exceeded "
                    f"mid-execution; work cancelled"
                ),
            )
        except asyncio.CancelledError:
            if work.cancel_event.is_set():
                # The executor thread observed the cancel event and
                # aborted; report the deadline, don't die with it.
                self._count("deadline_exceeded")
                return self._error(
                    request.id,
                    DeadlineExceededError(
                        f"deadline of {work.deadline:.3f}s exceeded; "
                        f"work cancelled"
                    ),
                )
            raise  # genuine shutdown cancellation
        finally:
            self._in_flight -= 1
        self._count("completed")
        self._count("retries", result["info"]["retries"])
        self._count("faults_injected", result["info"]["faults_injected"])
        _LATENCY.observe(
            time.monotonic() - work.admitted_at, service=self._label
        )
        if result["info"]["degraded"]:
            self._count("degraded_runs")
            self._consecutive_degraded += 1
            if self._consecutive_degraded >= self.config.degrade_runs:
                self._serial_mode = True
        else:
            self._consecutive_degraded = 0
        return protocol.ok_response(request.id, result)

    def _execute_sync(self, work: _Work) -> dict:
        """The blocking compile + sharded run (service executor thread).

        ``run_in_executor`` does not propagate contextvars, so the
        request span context rides on ``work.trace`` and is re-attached
        here before the ``service.execute`` span opens.
        """
        with tracing.attached(work.trace), tracing.span(
            "service.execute", request_id=work.request.id
        ):
            return self._run_request(work)

    def _run_request(self, work: _Work) -> dict:
        from repro.exec.parallel import parallel_run_with_info
        from repro.pipeline import compile_kernel

        request = work.request
        plan_scope = (
            inject_faults(work.fault_plan)
            if work.fault_plan is not None
            else None
        )
        try:
            if plan_scope is not None:
                plan_scope.__enter__()
            kernel = _resolve_kernel(request)
            # An unknown preset raises PassPipelineError (QW301), which
            # already renders as a structured coded response downstream.
            compiled = compile_kernel(
                kernel, pipeline=request.preset, cache=True
            )
            noise_model = _build_noise_model(request.noise)
            if noise_model is None:
                circuit = (
                    compiled.execution_circuit or compiled.optimized_circuit
                )
            else:
                # Channels attach by gate name; fused blocks would
                # silently drop them (same rule as simulate_kernel).
                circuit = compiled.optimized_circuit
            if work.cancel_event.is_set():
                raise CancelledError("cancelled before execution")
            results, info = parallel_run_with_info(
                circuit,
                request.shots,
                request.seed,
                workers=request.workers or self.config.parallel_workers,
                backend=request.backend,
                noise_model=noise_model,
                use_processes=(
                    self.config.use_processes and not self._serial_mode
                ),
                retry=self.config.retry,
                cancel_event=work.cancel_event,
            )
        finally:
            if plan_scope is not None:
                plan_scope.__exit__(None, None, None)
        return {
            "counts": protocol.counts_of(results),
            "shots": info.shots,
            "info": {
                "backend": info.backend,
                "workers": info.workers,
                "chunks": info.chunks,
                "retries": info.retries,
                "faults_injected": info.faults_injected,
                "degraded": info.degraded,
                "compile_cache": compiled.provenance,
            },
        }

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "draining" if self._draining else (
                "degraded" if self._serial_mode else "ok"
            ),
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "in_flight": self._in_flight,
        }

    def stats(self) -> dict:
        from repro.pipeline import compile_cache_info

        cache = compile_cache_info()
        disk = cache.get("disk", {})
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        return {
            **self.health(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "counters": dict(self.counters),
            "error_codes": dict(self.error_codes),
            "serial_mode": self._serial_mode,
            "compile_cache": {
                "memory_hits": cache.get("hits", 0),
                "memory_hit_rate": (
                    round(cache.get("hits", 0) / lookups, 4)
                    if lookups
                    else None
                ),
                "disk_hits": disk.get("hits", 0),
                "disk_corrupt": disk.get("corrupt", 0),
                "disk_tmp_swept": disk.get("tmp_swept", 0),
            },
        }

    def metrics(self) -> dict:
        """The ``op: "metrics"`` payload: the whole process-wide
        registry as Prometheus text exposition."""
        return {
            "exposition": obs_metrics.render(),
            "content_type": "text/plain; version=0.0.4; charset=utf-8",
        }

    def reset_degradation(self) -> None:
        """Re-enable process pools after operator intervention."""
        self._serial_mode = False
        self._consecutive_degraded = 0

    def _error(self, request_id: Any, error: Exception) -> dict:
        response = protocol.error_response(request_id, error)
        code = response["error"]["code"]
        _ERRORS.inc(service=self._label, code=code)
        if code not in ("QW601", "QW602"):  # already counted at source
            self._count("failed")
        return response


# ----------------------------------------------------------------------
# Request -> kernel / noise resolution.
# ----------------------------------------------------------------------
def _resolve_kernel(request: protocol.RunRequest):
    import hashlib
    import linecache

    from repro.evaluation import ALGORITHMS, asdf_kernel
    from repro.frontend.decorators import QpuKernel

    if request.kernel is not None:
        if request.kernel not in ALGORITHMS:
            raise BadRequestError(
                f"unknown kernel {request.kernel!r} (known algorithms: "
                f"{', '.join(ALGORITHMS)}; or send 'source')"
            )
        return asdf_kernel(request.kernel, request.n)
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 — trusted tier
    # The frontend reparses kernels with inspect.getsource, which for
    # exec'd code only works if the pseudo-filename is in the linecache.
    source = request.source or ""
    digest = hashlib.sha256(source.encode()).hexdigest()[:12]
    filename = f"<repro-service-kernel-{digest}>"
    linecache.cache[filename] = (
        len(source), None, source.splitlines(keepends=True), filename
    )
    try:
        code = compile(source, filename, "exec")
        exec(code, namespace)  # noqa: S102 — trusted tier
    except QwertyError:
        raise
    except Exception as error:
        raise BadRequestError(
            f"'source' failed to execute: {type(error).__name__}: {error}"
        ) from error
    kernels = [
        value
        for value in namespace.values()
        if isinstance(value, QpuKernel)
    ]
    if len(kernels) != 1:
        raise BadRequestError(
            f"'source' must define exactly one @qpu kernel, found "
            f"{len(kernels)}"
        )
    return kernels[0]


def _build_noise_model(noise):
    if not noise:
        return None
    from repro import noise as noise_mod
    from repro.errors import NoiseError
    from repro.noise import NoiseModel

    model = NoiseModel()
    for name, parameter in noise.items():
        constructor = getattr(noise_mod, name)
        try:
            model = model.add_channel(constructor(float(parameter)))
        except (NoiseError, TypeError, ValueError) as error:
            raise BadRequestError(
                f"invalid parameter {parameter!r} for noise channel "
                f"{name!r}: {error}"
            ) from error
    return model


class ServiceClient:
    """In-process client: the service API without a socket.

    Wraps a started :class:`ExecutionService`; used by tests and
    benchmarks so protocol semantics (shedding, deadlines, error
    envelopes) are exercised without TCP timing noise.
    """

    def __init__(self, service: ExecutionService) -> None:
        self.service = service

    async def run(self, **fields) -> dict:
        return await self.service.submit({"op": "run", **fields})

    async def health(self) -> dict:
        return await self.service.submit({"op": "health"})

    async def stats(self) -> dict:
        return await self.service.submit({"op": "stats"})

    async def metrics(self) -> dict:
        return await self.service.submit({"op": "metrics"})
