"""``python -m repro.service`` — run the TCP execution service."""

from repro.service.server import main

if __name__ == "__main__":
    raise SystemExit(main())
