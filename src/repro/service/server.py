"""JSON-lines TCP front end over :class:`ExecutionService`.

One connection, many requests: every line is parsed, submitted, and
answered with one line; responses may interleave across a
connection's in-flight requests (pipelining), so clients match on
``id``.  A malformed line gets a ``QW604`` error line instead of a
dropped connection — a misbehaving client learns what it did wrong.

Graceful shutdown: :func:`serve` installs SIGINT/SIGTERM handlers
that drain the service (stop admitting -> ``QW605``, finish queued
work, tear down pools) before the sockets close, so an orchestrator's
stop signal never kills half-executed requests.

Run it standalone::

    python -m repro.service --host 127.0.0.1 --port 8787

with the fault-injection environment knobs (``REPRO_FAULTS=...``)
applying process-wide — the CI service-smoke job starts exactly this
under a 5% worker-crash plan.  See docs/service.md.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.obs.logging import get_logger
from repro.service.protocol import (
    encode_response,
    error_response,
    parse_request,
)
from repro.service.service import ExecutionService, ServiceConfig

_LOG = get_logger("service.server")


async def handle_connection(
    service: ExecutionService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: line in, response line out, pipelined."""
    write_lock = asyncio.Lock()
    in_flight: set[asyncio.Task] = set()

    async def respond(response: dict) -> None:
        async with write_lock:
            writer.write(encode_response(response))
            await writer.drain()

    async def run_one(payload: dict) -> None:
        await respond(await service.submit(payload))

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            try:
                payload = parse_request(line)
            except Exception as error:  # noqa: BLE001 — answered, not raised
                await respond(error_response(None, error))
                continue
            task = asyncio.create_task(run_one(payload))
            in_flight.add(task)
            task.add_done_callback(in_flight.discard)
        if in_flight:
            await asyncio.gather(*in_flight, return_exceptions=True)
    except (ConnectionResetError, BrokenPipeError):
        pass  # the client vanished; nothing left to answer
    except asyncio.CancelledError:
        # Server teardown while blocked on readline: not an error —
        # swallowing it here keeps loop shutdown from logging a
        # spurious traceback per open connection.
        pass
    finally:
        for task in in_flight:
            task.cancel()
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    config: Optional[ServiceConfig] = None,
    *,
    ready: "Optional[asyncio.Event]" = None,
    install_signal_handlers: bool = True,
) -> None:
    """Run the service until SIGINT/SIGTERM, then drain gracefully.

    ``ready`` (if given) is set once the socket is listening — test
    and smoke harnesses wait on it instead of polling the port.
    ``port=0`` binds an ephemeral port (read it from ``ready``-time
    ``server.sockets``); pass ``install_signal_handlers=False`` when
    embedding in a loop that manages its own signals.
    """
    service = ExecutionService(config)
    await service.start()
    stop = asyncio.Event()
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal support
    server = await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w), host, port
    )
    async with server:
        bound = server.sockets[0].getsockname()
        _LOG.info(
            f"repro.service listening on {bound[0]}:{bound[1]}",
            extra={"fields": {"host": bound[0], "port": bound[1]}},
        )
        if ready is not None:
            ready.set()
        await stop.wait()
        _LOG.info("repro.service draining ...")
        await service.drain()
    _LOG.info("repro.service stopped")


def main(argv: "Optional[list[str]]" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="The repro fault-tolerant execution service "
        "(JSON lines over TCP; see docs/service.md)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--queue-limit", type=int, default=ServiceConfig.queue_limit
    )
    parser.add_argument(
        "--executors", type=int, default=ServiceConfig.executors
    )
    parser.add_argument(
        "--workers", type=int, default=ServiceConfig.parallel_workers,
        help="shot-sharding process workers per run",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="run shot chunks in-process (no process pool)",
    )
    args = parser.parse_args(argv)
    config = ServiceConfig(
        queue_limit=args.queue_limit,
        executors=args.executors,
        parallel_workers=args.workers,
        use_processes=not args.serial,
    )
    try:
        asyncio.run(serve(args.host, args.port, config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
