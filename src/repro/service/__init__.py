"""The fault-tolerant async execution service (ROADMAP tentpole).

A thin, stdlib-only service tier over the execution substrate of
:mod:`repro.exec`: compile/run requests go through a bounded priority
queue with deadline enforcement, chunk-granular retry, and graceful
degradation, and come back as structured JSON responses with stable
``QWnnn`` diagnostic codes.

- :mod:`repro.service.protocol` — the JSON-lines wire format and
  request validation.
- :mod:`repro.service.service` — the transport-agnostic engine
  (:class:`ExecutionService`) and the in-process
  :class:`ServiceClient`.
- :mod:`repro.service.server` — the TCP front end
  (``python -m repro.service``).

See docs/service.md for the protocol, semantics, and chaos-testing
knobs.
"""

#: Names re-exported from repro.service.service.
_SERVICE_EXPORTS = (
    "ExecutionService",
    "ServiceClient",
    "ServiceConfig",
)

#: Names re-exported from repro.service.server.
_SERVER_EXPORTS = (
    "main",
    "serve",
)

#: Names re-exported from repro.service.protocol.
_PROTOCOL_EXPORTS = (
    "RunRequest",
    "parse_request",
)

__all__ = list(_SERVICE_EXPORTS + _SERVER_EXPORTS + _PROTOCOL_EXPORTS)


def __getattr__(name: str):
    # Lazy re-exports keep `import repro.service.protocol` (pure
    # validation, no simulator) cheap for clients that only speak the
    # wire format.
    if name in _SERVICE_EXPORTS:
        from repro.service import service

        return getattr(service, name)
    if name in _SERVER_EXPORTS:
        from repro.service import server

        return getattr(server, name)
    if name in _PROTOCOL_EXPORTS:
        from repro.service import protocol

        return getattr(protocol, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
