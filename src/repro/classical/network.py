"""XOR-AND graph (XAG) logic networks with hash-consing.

The network is the mockturtle substitute: ``@classical`` functions
lower to signals over primary inputs, AND nodes and XOR nodes, with
complemented edges.  Structural hashing and local rewrites (constant
folding, idempotence, annihilation) run at construction time, which
subsumes the classical optimizations ASDF gets from mockturtle for the
oracle workloads in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class Signal:
    """An edge into the network: a node id plus a complement flag."""

    node: int
    complemented: bool = False

    def __invert__(self) -> "Signal":
        return Signal(self.node, not self.complemented)


@dataclass(frozen=True)
class _Node:
    """A network node: 'const', 'pi', 'and' or 'xor'."""

    kind: str
    operands: tuple[Signal, ...] = ()
    pi_index: int = -1


class LogicNetwork:
    """A hash-consed XAG.

    Node 0 is the constant-false node; ``Signal(0, False)`` is false
    and ``Signal(0, True)`` is true.
    """

    def __init__(self, num_inputs: int = 0) -> None:
        self.nodes: list[_Node] = [_Node("const")]
        self._pi_signals: list[Signal] = []
        self._strash: dict[tuple, int] = {}
        self.outputs: list[Signal] = []
        for _ in range(num_inputs):
            self.add_input()

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @property
    def false(self) -> Signal:
        return Signal(0, False)

    @property
    def true(self) -> Signal:
        return Signal(0, True)

    def constant(self, value: bool) -> Signal:
        return self.true if value else self.false

    def add_input(self) -> Signal:
        index = len(self._pi_signals)
        self.nodes.append(_Node("pi", pi_index=index))
        signal = Signal(len(self.nodes) - 1)
        self._pi_signals.append(signal)
        return signal

    @property
    def inputs(self) -> list[Signal]:
        return list(self._pi_signals)

    @property
    def num_inputs(self) -> int:
        return len(self._pi_signals)

    def _intern(self, kind: str, a: Signal, b: Signal) -> Signal:
        if (a.node, a.complemented) > (b.node, b.complemented):
            a, b = b, a
        key = (kind, a, b)
        if key not in self._strash:
            self.nodes.append(_Node(kind, (a, b)))
            self._strash[key] = len(self.nodes) - 1
        return Signal(self._strash[key])

    def and_(self, a: Signal, b: Signal) -> Signal:
        # Constant folding and local rules.
        if a == self.false or b == self.false:
            return self.false
        if a == self.true:
            return b
        if b == self.true:
            return a
        if a == b:
            return a
        if a.node == b.node:  # a & ~a
            return self.false
        return self._intern("and", a, b)

    def xor_(self, a: Signal, b: Signal) -> Signal:
        if a == self.false:
            return b
        if b == self.false:
            return a
        if a == self.true:
            return ~b
        if b == self.true:
            return ~a
        if a == b:
            return self.false
        if a.node == b.node:  # a ^ ~a
            return self.true
        # Normalize complements out of XOR operands.
        complement = a.complemented ^ b.complemented
        result = self._intern(
            "xor", Signal(a.node), Signal(b.node)
        )
        return ~result if complement else result

    def or_(self, a: Signal, b: Signal) -> Signal:
        return ~self.and_(~a, ~b)

    def not_(self, a: Signal) -> Signal:
        return ~a

    def add_output(self, signal: Signal) -> None:
        self.outputs.append(signal)

    # ------------------------------------------------------------------
    # Inspection and evaluation.
    # ------------------------------------------------------------------
    def node(self, signal: Signal) -> _Node:
        return self.nodes[signal.node]

    def num_and_nodes(self) -> int:
        live = self.live_nodes()
        return sum(1 for i in live if self.nodes[i].kind == "and")

    def num_xor_nodes(self) -> int:
        live = self.live_nodes()
        return sum(1 for i in live if self.nodes[i].kind == "xor")

    def live_nodes(self) -> list[int]:
        """Node ids reachable from outputs, topologically ordered."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(node_id: int) -> None:
            if node_id in seen:
                return
            seen.add(node_id)
            for operand in self.nodes[node_id].operands:
                visit(operand.node)
            order.append(node_id)

        for output in self.outputs:
            visit(output.node)
        return order

    def evaluate(self, input_bits: list[int]) -> list[int]:
        """Evaluate the network on concrete inputs (for testing)."""
        if len(input_bits) != self.num_inputs:
            raise ValueError("wrong number of inputs")
        values: dict[int, int] = {0: 0}
        for node_id in self.live_nodes():
            node = self.nodes[node_id]
            if node.kind == "const":
                values[node_id] = 0
            elif node.kind == "pi":
                values[node_id] = input_bits[node.pi_index]
            else:
                a, b = node.operands
                va = values[a.node] ^ int(a.complemented)
                vb = values[b.node] ^ int(b.complemented)
                values[node_id] = va & vb if node.kind == "and" else va ^ vb
        # Inputs may be dead; make sure they evaluate anyway.
        for signal in self._pi_signals:
            values.setdefault(signal.node, input_bits[self.nodes[signal.node].pi_index])
        return [
            values.get(out.node, 0) ^ int(out.complemented)
            for out in self.outputs
        ]


def reduce_signals(
    network: LogicNetwork,
    signals: list[Signal],
    op: Callable[[Signal, Signal], Signal],
) -> Signal:
    """Balanced reduction of a signal list (for xor_reduce etc.)."""
    if not signals:
        return network.false
    layer = list(signals)
    while len(layer) > 1:
        next_layer = []
        for i in range(0, len(layer) - 1, 2):
            next_layer.append(op(layer[i], layer[i + 1]))
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer
    return layer[0]
