"""Reversible embeddings of classical functions (paper §6.4).

:func:`synthesize_xor_embedding` produces the Bennett embedding
``U_f |x>|y> = |x>|y + f(x)>``: XOR structure becomes CNOT chains with
no ancillas; AND trees collapse into a single multi-controlled X whose
controls are (possibly complemented) literals; non-literal AND operands
are computed into ancillas, used, then uncomputed (Bennett's trick,
ref. [5]).

:func:`synthesize_sign_embedding` produces
``U'_f |x> = (-1)^{f(x)} |x>`` by pointing the Bennett embedding at a
|-> ancilla (the form the relaxed peephole of §6.5 later rewrites into
an ancilla-free multi-controlled Z).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classical.network import LogicNetwork, Signal
from repro.errors import SynthesisError
from repro.qcircuit.circuit import CircuitGate


@dataclass
class EmbeddedOracle:
    """A synthesized oracle fragment.

    Qubits are indexed: inputs ``0..num_inputs-1``, then outputs
    ``num_inputs..num_inputs+num_outputs-1``, then ancillas.  Ancillas
    start and end in |0> (|-> ancillas are prepared and unprepared by
    explicit gates inside ``gates``).
    """

    num_inputs: int
    num_outputs: int
    num_ancillas: int
    gates: list[CircuitGate] = field(default_factory=list)

    @property
    def num_qubits(self) -> int:
        return self.num_inputs + self.num_outputs + self.num_ancillas


class _Emitter:
    def __init__(self, network: LogicNetwork, num_outputs: int) -> None:
        self.network = network
        self.num_inputs = network.num_inputs
        self.num_outputs = num_outputs
        self.gates: list[CircuitGate] = []
        self.num_ancillas = 0
        self._free_ancillas: list[int] = []
        #: Maps pi node id -> input qubit.
        self._pi_qubits = {
            signal.node: index
            for index, signal in enumerate(network.inputs)
        }

    def alloc_ancilla(self) -> int:
        if self._free_ancillas:
            return self._free_ancillas.pop()
        qubit = self.num_inputs + self.num_outputs + self.num_ancillas
        self.num_ancillas += 1
        return qubit

    def free_ancilla(self, qubit: int) -> None:
        self._free_ancillas.append(qubit)

    # ------------------------------------------------------------------
    def literal_of(self, signal: Signal) -> tuple[int, int] | None:
        """(qubit, control state) if the signal is a PI literal."""
        node = self.network.node(signal)
        if node.kind == "pi":
            return self._pi_qubits[signal.node], 0 if signal.complemented else 1
        return None

    def flatten_and(self, signal: Signal) -> list[Signal]:
        """The operand leaves of a maximal AND tree rooted at ``signal``."""
        node = self.network.node(signal)
        if node.kind == "and" and not signal.complemented:
            leaves: list[Signal] = []
            for operand in node.operands:
                leaves.extend(self.flatten_and(operand))
            return leaves
        return [signal]

    def flatten_xor(self, signal: Signal) -> tuple[list[Signal], bool]:
        """The leaves of a maximal XOR tree, plus a parity complement."""
        node = self.network.node(signal)
        if node.kind == "xor":
            leaves: list[Signal] = []
            parity = signal.complemented
            for operand in node.operands:
                sub_leaves, sub_parity = self.flatten_xor(
                    Signal(operand.node, operand.complemented)
                )
                leaves.extend(sub_leaves)
                parity ^= sub_parity
            return leaves, parity
        return [Signal(signal.node)], signal.complemented

    # ------------------------------------------------------------------
    def emit_xor_into(self, signal: Signal, target: int) -> None:
        """``target ^= signal`` as gates."""
        node = self.network.node(signal)
        if node.kind == "const":
            if signal.complemented:
                self.gates.append(CircuitGate("x", (target,)))
            return
        if node.kind == "pi":
            self.gates.append(
                CircuitGate("x", (target,), (self._pi_qubits[signal.node],))
            )
            if signal.complemented:
                self.gates.append(CircuitGate("x", (target,)))
            return
        if node.kind == "xor":
            leaves, parity = self.flatten_xor(signal)
            for leaf in leaves:
                self.emit_xor_into(leaf, target)
            if parity:
                self.gates.append(CircuitGate("x", (target,)))
            return
        # AND tree: gather literal controls; compute non-literal
        # operands into ancillas (Bennett compute/uncompute).
        if signal.complemented:
            self.emit_xor_into(~signal, target)
            self.gates.append(CircuitGate("x", (target,)))
            return
        leaves = self.flatten_and(signal)
        controls: list[int] = []
        states: list[int] = []
        computed: list[tuple[Signal, int]] = []
        for leaf in leaves:
            literal = self.literal_of(leaf)
            if literal is not None:
                qubit, state = literal
                if qubit in controls:
                    index = controls.index(qubit)
                    if states[index] != state:
                        # x & ~x: constant false (normally folded away).
                        self._uncompute(computed)
                        return
                    continue
                controls.append(qubit)
                states.append(state)
            else:
                ancilla = self.alloc_ancilla()
                self.emit_xor_into(leaf, ancilla)
                computed.append((leaf, ancilla))
                controls.append(ancilla)
                states.append(1)
        self.gates.append(
            CircuitGate("x", (target,), tuple(controls), (), tuple(states))
        )
        self._uncompute(computed)

    def _uncompute(self, computed: list[tuple[Signal, int]]) -> None:
        for leaf, ancilla in reversed(computed):
            start = len(self.gates)
            self.emit_xor_into(leaf, ancilla)
            # Re-emitting the same computation is its own inverse here
            # (all gates are X/MCX chains), but reverse for safety.
            tail = self.gates[start:]
            self.gates[start:] = list(reversed(tail))
            self.free_ancilla(ancilla)


def synthesize_xor_embedding(network: LogicNetwork) -> EmbeddedOracle:
    """The Bennett embedding ``|x>|y> -> |x>|y + f(x)>``."""
    if not network.outputs:
        raise SynthesisError("network has no outputs")
    emitter = _Emitter(network, len(network.outputs))
    for index, output in enumerate(network.outputs):
        target = emitter.num_inputs + index
        emitter.emit_xor_into(output, target)
    return EmbeddedOracle(
        emitter.num_inputs,
        emitter.num_outputs,
        emitter.num_ancillas,
        emitter.gates,
    )


def synthesize_sign_embedding(network: LogicNetwork) -> EmbeddedOracle:
    """The sign form ``|x> -> (-1)^{f(x)} |x>`` via a |-> ancilla.

    Emitted literally as prepare-|->, Bennett-embed, unprepare-|->;
    the relaxed peephole optimization (paper §6.5, Fig. 10) rewrites
    this into a multi-controlled Z without the ancilla.
    """
    if len(network.outputs) != 1:
        raise SynthesisError("sign embedding requires a single-output function")
    emitter = _Emitter(network, 0)
    target = emitter.alloc_ancilla()  # The |-> ancilla.
    emitter.gates.append(CircuitGate("x", (target,)))
    emitter.gates.append(CircuitGate("h", (target,)))
    emitter.emit_xor_into(network.outputs[0], target)
    emitter.gates.append(CircuitGate("h", (target,)))
    emitter.gates.append(CircuitGate("x", (target,)))
    return EmbeddedOracle(
        emitter.num_inputs, 0, emitter.num_ancillas, emitter.gates
    )
