"""Converting ``@classical`` Python functions to logic networks (§6.4).

Supported surface syntax inside ``@classical`` functions: parameters
annotated ``bit[N]``; bitwise ``&``, ``|``, ``^``, ``~``; indexing
``x[i]`` and slicing ``x[i:j]``; concatenation via ``+``; the reduction
methods ``.xor_reduce()``, ``.and_reduce()``, ``.or_reduce()``; and
``.repeat(k)`` broadcasting one bit.  Captured values (classical bit
strings) become constants, which the network's constant folding then
propagates — this is how the Bernstein–Vazirani oracle
``(secret & x).xor_reduce()`` collapses to a bare parity of the
selected input bits.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from repro.classical.network import LogicNetwork, Signal, reduce_signals
from repro.errors import QwertySyntaxError, QwertyTypeError
from repro.frontend.ast_nodes import DimExpr, DimOp, DimRef, eval_dim

BitVector = list


def parse_classical_source(fn):
    """Parse the function and return (name, [(param, dim_expr)], body)."""
    source = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(source)
    func_def = next(
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    params = []
    for arg in func_def.args.args:
        params.append((arg.arg, _annotation_dim(arg.annotation)))
    return func_def.name, params, func_def.body


def _annotation_dim(node) -> DimExpr:
    if node is None:
        raise QwertySyntaxError("@classical parameters need bit[N] annotations")
    if isinstance(node, ast.Name) and node.id == "bit":
        return 1
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "bit"
    ):
        return _dim(node.slice)
    raise QwertySyntaxError("@classical parameters must be bit[N]")


def _dim(node) -> DimExpr:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        return DimRef(node.id)
    if isinstance(node, ast.BinOp):
        ops = {
            ast.Add: "+",
            ast.Sub: "-",
            ast.Mult: "*",
            ast.FloorDiv: "//",
            ast.Pow: "**",
        }
        for py_op, name in ops.items():
            if isinstance(node.op, py_op):
                return DimOp(name, _dim(node.left), _dim(node.right))
    raise QwertySyntaxError("unsupported dimension expression")


def build_network(
    body: list[ast.stmt],
    param_widths: list[tuple[str, int]],
    captures: dict[str, tuple[int, ...]],
    dims: dict[str, int],
) -> LogicNetwork:
    """Evaluate the function body into a :class:`LogicNetwork`.

    ``captures`` maps parameter names to concrete bit tuples; remaining
    parameters become primary inputs in order.
    """
    net = LogicNetwork()
    env: dict[str, BitVector] = {}
    for name, width in param_widths:
        if name in captures:
            bits = captures[name]
            if len(bits) != width:
                raise QwertyTypeError(
                    f"capture {name!r} has {len(bits)} bits, annotation "
                    f"says {width}"
                )
            env[name] = [net.constant(bool(b)) for b in bits]
        else:
            env[name] = [net.add_input() for _ in range(width)]

    evaluator = _Evaluator(net, env, dims)
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 or not isinstance(
                stmt.targets[0], ast.Name
            ):
                raise QwertySyntaxError("unsupported assignment in @classical")
            env[stmt.targets[0].id] = evaluator.expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            for signal in evaluator.expr(stmt.value):
                net.add_output(signal)
            return net
        else:
            raise QwertySyntaxError(
                f"unsupported statement in @classical: {ast.dump(stmt)}"
            )
    raise QwertySyntaxError("@classical function has no return")


class _Evaluator:
    def __init__(self, net: LogicNetwork, env, dims) -> None:
        self.net = net
        self.env = env
        self.dims = dims

    def expr(self, node: ast.expr) -> BitVector:
        if isinstance(node, ast.Name):
            if node.id not in self.env:
                raise QwertyTypeError(f"undefined variable {node.id!r}")
            return list(self.env[node.id])
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            if node.value not in (0, 1):
                raise QwertyTypeError("only single-bit integer constants")
            return [self.net.constant(bool(node.value))]
        if isinstance(node, ast.BinOp):
            return self.binop(node)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
            return [~bit for bit in self.expr(node.operand)]
        if isinstance(node, ast.Subscript):
            return self.subscript(node)
        if isinstance(node, ast.Call):
            return self.call(node)
        raise QwertySyntaxError(
            f"unsupported @classical expression: {ast.dump(node)}"
        )

    def binop(self, node: ast.BinOp) -> BitVector:
        if isinstance(node.op, ast.Add):
            return self.expr(node.left) + self.expr(node.right)
        left = self.expr(node.left)
        right = self.expr(node.right)
        if len(left) != len(right):
            raise QwertyTypeError("bitwise operands must have equal width")
        if isinstance(node.op, ast.BitAnd):
            return [self.net.and_(a, b) for a, b in zip(left, right)]
        if isinstance(node.op, ast.BitOr):
            return [self.net.or_(a, b) for a, b in zip(left, right)]
        if isinstance(node.op, ast.BitXor):
            return [self.net.xor_(a, b) for a, b in zip(left, right)]
        raise QwertySyntaxError("unsupported @classical operator")

    def subscript(self, node: ast.Subscript) -> BitVector:
        value = self.expr(node.value)
        index = node.slice
        if isinstance(index, ast.Slice):
            low = eval_dim(_dim(index.lower), self.dims) if index.lower else 0
            high = (
                eval_dim(_dim(index.upper), self.dims)
                if index.upper
                else len(value)
            )
            return value[low:high]
        position = eval_dim(_dim(index), self.dims)
        return [value[position]]

    def call(self, node: ast.Call) -> BitVector:
        if not isinstance(node.func, ast.Attribute):
            raise QwertySyntaxError("unsupported call in @classical")
        operand = self.expr(node.func.value)
        method = node.func.attr
        if method == "xor_reduce":
            return [reduce_signals(self.net, operand, self.net.xor_)]
        if method == "and_reduce":
            return [reduce_signals(self.net, operand, self.net.and_)]
        if method == "or_reduce":
            return [reduce_signals(self.net, operand, self.net.or_)]
        if method == "repeat":
            if len(operand) != 1 or len(node.args) != 1:
                raise QwertySyntaxError(".repeat(k) applies to a single bit")
            count = eval_dim(_dim(node.args[0]), self.dims)
            return operand * count
        raise QwertySyntaxError(f"unknown @classical method .{method}")
