"""Classical logic networks and reversible oracle synthesis (paper §6.4).

ASDF converts ``@classical`` functions to logic networks in mockturtle,
optimizes them, and has tweedledum generate a Bennett embedding
``U_f |x>|y> = |x>|y + f(x)>``.  This package is the from-scratch
substitute: an XOR-AND graph (XAG) with hash-consing and constant
folding (:mod:`repro.classical.network`), and embedding synthesis that
implements XORs with CNOTs (no ancillas) and ANDs with multi-controlled
X gates (:mod:`repro.classical.embed`) — the ancilla-frugal strategy
the paper credits for beating Quipper's oracle synthesis (§8.3).
"""

from repro.classical.network import LogicNetwork, Signal
from repro.classical.embed import (
    EmbeddedOracle,
    synthesize_sign_embedding,
    synthesize_xor_embedding,
)

__all__ = [
    "EmbeddedOracle",
    "LogicNetwork",
    "Signal",
    "synthesize_sign_embedding",
    "synthesize_xor_embedding",
]
