"""Distribution arithmetic shared across the execution layer.

One implementation of the empirical-distribution / total-variation /
classical-fidelity math serves the evaluation harness
(:mod:`repro.evaluation`), the statistical test helpers
(``tests/stats.py``), and the benchmarks — so the margins tests
enforce and the numbers reports print cannot drift apart.  Kept free
of any compiler or simulator imports: comparing two histograms must
not drag in the paper evaluation stack.
"""

from __future__ import annotations

from typing import Sequence


def distribution_of(results: Sequence) -> dict:
    """Outcome -> relative frequency over a list of sampled outcomes."""
    counts: dict = {}
    for outcome in results:
        counts[outcome] = counts.get(outcome, 0) + 1
    total = len(results)
    return {outcome: count / total for outcome, count in counts.items()}


def distribution_tvd(p: dict, q: dict) -> float:
    """Total-variation distance between two outcome distributions."""
    return 0.5 * sum(
        abs(p.get(key, 0.0) - q.get(key, 0.0)) for key in set(p) | set(q)
    )


def classical_fidelity(p: dict, q: dict) -> float:
    """The squared Bhattacharyya overlap of two distributions (1.0 for
    identical distributions, 0.0 for disjoint support)."""
    overlap = sum(
        (p.get(key, 0.0) * q.get(key, 0.0)) ** 0.5
        for key in set(p) | set(q)
    )
    return overlap**2
