"""Compiler throughput: wall-clock cost of each pipeline stage.

Not a paper figure, but useful engineering data: how long the ASDF
reproduction takes to compile each benchmark at a realistic size, how
the cost splits across passes (via the PassManager instrumentation),
and how the polynomial-time span checker scales (paper §4.1 claims
O(k^2 log k) instead of the naive exponential).
"""

import time

import pytest

from conftest import bench_record, write_bench_json, write_result

from repro import CompileOptions
from repro.basis import Basis
from repro.basis.span import check_span_equivalence
from repro.evaluation import ALGORITHMS, asdf_kernel


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_compile_speed(benchmark, algorithm):
    kernel = asdf_kernel(algorithm, 32)
    benchmark.pedantic(
        lambda: kernel.compile(), rounds=3, iterations=1, warmup_rounds=1
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_per_pass_timing_breakdown(benchmark, algorithm):
    """Print where compile time goes, pass by pass, per benchmark."""
    kernel = asdf_kernel(algorithm, 32)
    options = CompileOptions.preset("default", collect_statistics=True)
    result = benchmark.pedantic(
        lambda: kernel.compile(options=options), rounds=1, iterations=1
    )
    report = result.statistics.report()
    write_result(f"compiler_passes_{algorithm}.txt",
                 f"{algorithm} n=32: per-pass compile breakdown\n{report}")
    write_bench_json(
        "compiler_speed",
        [
            bench_record(
                f"compile-{algorithm}-n32",
                "default",
                result.statistics.total_seconds * 1e3,
            )
        ],
    )
    names = [entry.name for entry in result.statistics.entries]
    assert "inline" in names and "(frontend)" in names


def test_compile_cache_speedup(benchmark):
    """Repeated compiles of an equivalent kernel hit the driver cache.

    Explicit cold-cache mode: ``disk=True`` also drops the persistent
    on-disk layer (repro.exec.diskcache) — without it the "cold" leg
    would quietly read the artifact a previous run persisted and the
    cold number would measure unpickling, not compilation."""
    from repro import clear_compile_cache

    clear_compile_cache(disk=True)
    kernel = asdf_kernel("grover", 32)
    start = time.perf_counter()
    cold = kernel.compile(pipeline="default", cache=True)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: kernel.compile(pipeline="default", cache=True),
        rounds=3,
        iterations=1,
    )
    warm_seconds = time.perf_counter() - start
    write_bench_json(
        "compiler_speed",
        [
            bench_record(
                "compile-grover-n32-cache", "cold", cold_seconds * 1e3
            ),
            bench_record(
                "compile-grover-n32-cache",
                "warm-3rounds",
                warm_seconds * 1e3,
            ),
        ],
    )
    assert warm is cold


@pytest.mark.parametrize("k", [16, 64, 256])
def test_span_check_scales_polynomially(benchmark, k):
    # {'0','1'}[k] >> {'1','0'}[k] covers 2^k vectors; the checker must
    # stay polynomial in the AST size k (paper §4.1).
    b_in = Basis.literal("0", "1").broadcast(k)
    b_out = Basis.literal("1", "0").broadcast(k)
    benchmark.pedantic(
        lambda: check_span_equivalence(b_in, b_out),
        rounds=5,
        iterations=2,
    )
