"""Compiler throughput: wall-clock cost of each pipeline stage.

Not a paper figure, but useful engineering data: how long the ASDF
reproduction takes to compile each benchmark at a realistic size, and
how the polynomial-time span checker scales (paper §4.1 claims
O(k^2 log k) instead of the naive exponential).
"""

import pytest

from repro.basis import Basis
from repro.basis.span import check_span_equivalence
from repro.evaluation import ALGORITHMS, asdf_kernel


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_compile_speed(benchmark, algorithm):
    kernel = asdf_kernel(algorithm, 32)
    benchmark.pedantic(
        lambda: kernel.compile(), rounds=3, iterations=1, warmup_rounds=1
    )


@pytest.mark.parametrize("k", [16, 64, 256])
def test_span_check_scales_polynomially(benchmark, k):
    # {'0','1'}[k] >> {'1','0'}[k] covers 2^k vectors; the checker must
    # stay polynomial in the AST size k (paper §4.1).
    b_in = Basis.literal("0", "1").broadcast(k)
    b_out = Basis.literal("1", "0").broadcast(k)
    benchmark.pedantic(
        lambda: check_span_equivalence(b_in, b_out),
        rounds=5,
        iterations=2,
    )
