"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  Results
are printed (visible with ``pytest benchmarks/ -s``), written to
``benchmarks/out/`` so EXPERIMENTS.md can reference them, and — for
the machine-readable perf trajectory — appended to repo-root
``BENCH_<name>.json`` files (one per bench module) that CI uploads as
an artifact, so future PRs can chart wall-clock over time.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).parent.parent

#: Keys every BENCH_*.json record carries (None where inapplicable).
BENCH_RECORD_KEYS = ("benchmark", "config", "wall_ms", "shots", "evolutions")


def pytest_sessionstart(session) -> None:
    """Drop stale BENCH_*.json files so a harness run regenerates the
    whole perf trajectory from scratch (records append within a run)."""
    for path in REPO_ROOT.glob("BENCH_*.json"):
        path.unlink()


def pytest_collection_modifyitems(items) -> None:
    """Tag everything under benchmarks/ with the ``benchmarks`` marker
    (registered in pyproject.toml) so runs can select or deselect the
    harness with ``-m benchmarks`` / ``-m 'not benchmarks'``."""
    for item in items:
        if Path(__file__).parent in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmarks)


def write_result(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text)
    print(f"\n--- {name} ---\n{text}")


def bench_record(
    benchmark: str,
    config: str,
    wall_ms: float,
    shots: "int | None" = None,
    evolutions: "int | None" = None,
) -> dict:
    """One machine-readable perf record for :func:`write_bench_json`."""
    return {
        "benchmark": benchmark,
        "config": config,
        "wall_ms": round(float(wall_ms), 4),
        "shots": shots,
        "evolutions": evolutions,
    }


def write_bench_json(name: str, records: "list[dict]") -> None:
    """Append perf records to repo-root ``BENCH_<name>.json``.

    ``name`` is the bench module's short name (e.g. ``fig11_runtime``);
    several tests of one module may call this and their records
    accumulate within a run (stale files are removed at session start).
    """
    for record in records:
        missing = [key for key in BENCH_RECORD_KEYS if key not in record]
        if missing:
            raise ValueError(f"bench record missing {missing}: {record}")
    path = REPO_ROOT / f"BENCH_{name}.json"
    existing = []
    if path.exists():
        existing = json.loads(path.read_text())["records"]
    payload = {
        "schema": "repro-bench-v1",
        "name": name,
        "records": existing + list(records),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n--- BENCH_{name}.json: {len(records)} record(s) appended ---")


def format_figure_series(series, metric_label: str) -> str:
    """Render {algorithm: {compiler: [(n, value)...]}} as aligned rows."""
    lines = []
    for algorithm, by_compiler in series.items():
        lines.append(f"[{algorithm}] {metric_label}")
        sizes = sorted({n for pts in by_compiler.values() for n, _ in pts})
        header = "  compiler " + "".join(f"{n:>14}" for n in sizes)
        lines.append(header)
        for compiler, points in by_compiler.items():
            values = dict(points)
            row = f"  {compiler:<9}" + "".join(
                f"{values.get(n, float('nan')):>14.3f}" for n in sizes
            )
            lines.append(row)
        lines.append("")
    return "\n".join(lines)
