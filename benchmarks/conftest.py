"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  Results
are printed (visible with ``pytest benchmarks/ -s``) and also written
to ``benchmarks/out/`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def pytest_collection_modifyitems(items) -> None:
    """Tag everything under benchmarks/ with the ``benchmarks`` marker
    (registered in pyproject.toml) so runs can select or deselect the
    harness with ``-m benchmarks`` / ``-m 'not benchmarks'``."""
    for item in items:
        if Path(__file__).parent in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmarks)


def write_result(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text)
    print(f"\n--- {name} ---\n{text}")


def format_figure_series(series, metric_label: str) -> str:
    """Render {algorithm: {compiler: [(n, value)...]}} as aligned rows."""
    lines = []
    for algorithm, by_compiler in series.items():
        lines.append(f"[{algorithm}] {metric_label}")
        sizes = sorted({n for pts in by_compiler.values() for n, _ in pts})
        header = "  compiler " + "".join(f"{n:>14}" for n in sizes)
        lines.append(header)
        for compiler, points in by_compiler.items():
            values = dict(points)
            row = f"  {compiler:<9}" + "".join(
                f"{values.get(n, float('nan')):>14.3f}" for n in sizes
            )
            lines.append(row)
        lines.append("")
    return "\n".join(lines)
