"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  Results
are printed (visible with ``pytest benchmarks/ -s``), written to
``benchmarks/out/`` so EXPERIMENTS.md can reference them, and — for
the machine-readable perf trajectory — appended to repo-root
``BENCH_<name>.json`` files (one per bench module) that CI uploads as
an artifact, so future PRs can chart wall-clock over time.

**The harness must be named explicitly**: ``pyproject.toml`` restricts
default collection to ``tests/`` (``testpaths``), so a bare ``pytest``
silently collects *zero* benchmarks — and writes zero BENCH_*.json
files.  The documented invocation is::

    python -m pytest benchmarks -s

(``python -m`` also puts the repo root on ``sys.path``, which the
noise bench needs for ``tests.stats``; this conftest pins that path
explicitly so ``pytest benchmarks`` works too.)

**Every module must emit JSON under plain pytest.**  The
``pytest-benchmark`` plugin is an optional dependency: when it is
missing, any test requiring its ``benchmark`` fixture *errors at
setup*, and historically that silently dropped most of the perf
trajectory (only the fixture-free tests wrote their BENCH_*.json — a
full harness run left just fig11/fig12).  The fallback ``benchmark``
fixture below shims ``benchmark.pedantic`` with a plain call when the
plugin is absent, so all modules run — and every file in
:data:`EXPECTED_BENCH_JSON` is written — under any pytest.  CI asserts
that manifest via ``python benchmarks/check_bench_json.py`` before
uploading the artifact.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).parent.parent

# `python -m pytest benchmarks` puts the repo root on sys.path, a bare
# `pytest benchmarks` does not; pin it so bench modules can always
# import the shared statistical helpers from the tests package.
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

#: Keys every BENCH_*.json record carries (None where inapplicable).
BENCH_RECORD_KEYS = (
    "benchmark",
    "config",
    "wall_ms",
    "shots",
    "evolutions",
    "gates_fused",
    "kernel",
)

#: The perf-trajectory manifest: one BENCH_<name>.json per bench
#: module.  A full harness run (`python -m pytest benchmarks -s`) must
#: leave exactly these at the repo root; check_bench_json.py enforces
#: it in CI.  Keep in sync when adding a bench module.
EXPECTED_BENCH_JSON = (
    "BENCH_ablation_peephole.json",
    "BENCH_ablation_selinger.json",
    "BENCH_ablation_xor.json",
    "BENCH_compiler_speed.json",
    "BENCH_fig11_runtime.json",
    "BENCH_fig12_qubits.json",
    "BENCH_kernels.json",
    "BENCH_noise.json",
    "BENCH_obs.json",
    "BENCH_parallel.json",
    "BENCH_service.json",
    "BENCH_table1_callables.json",
    "BENCH_variational.json",
)


@pytest.fixture(scope="session", autouse=True)
def _private_disk_cache(tmp_path_factory):
    """Point the persistent compile cache (repro.exec.diskcache) at a
    per-session tmpdir: a bench run must never read artifacts a previous
    run (or the developer's real ~/.cache/repro) left behind — a stale
    warm cache would silently turn every "cold" compile number into a
    disk-cache read."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-bench-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

class _BenchmarkShim:
    """Minimal stand-in for pytest-benchmark's fixture: runs the
    benched callable once, measuring nothing.  Keeps every bench —
    and its BENCH_*.json output — alive when the plugin is not
    installed (or disabled with ``-p no:benchmark``); install
    ``pytest-benchmark`` for real statistics."""

    @staticmethod
    def pedantic(
        target,
        args=(),
        kwargs=None,
        setup=None,
        rounds=1,
        warmup_rounds=0,
        iterations=1,
    ):
        if setup is not None:
            setup()
        return target(*args, **(kwargs or {}))

    def __call__(self, target, *args, **kwargs):
        return target(*args, **kwargs)


class _BenchmarkShimPlugin:
    """Provides a fallback ``benchmark`` fixture.  Registered from
    ``pytest_configure`` only when the real pytest-benchmark plugin is
    not active, so it can never shadow the real fixture — the probe
    must be plugin activation, not importability (``-p no:benchmark``
    leaves the module importable but the fixture missing)."""

    @pytest.fixture
    def benchmark(self):
        return _BenchmarkShim()


def pytest_configure(config) -> None:
    if not config.pluginmanager.hasplugin("benchmark"):
        config.pluginmanager.register(
            _BenchmarkShimPlugin(), "benchmark-shim"
        )


def pytest_sessionstart(session) -> None:
    """Drop stale BENCH_*.json files so a harness run regenerates the
    whole perf trajectory from scratch (records append within a run)."""
    for path in REPO_ROOT.glob("BENCH_*.json"):
        path.unlink()


def pytest_collection_modifyitems(items) -> None:
    """Tag everything under benchmarks/ with the ``benchmarks`` marker
    (registered in pyproject.toml) so runs can select or deselect the
    harness with ``-m benchmarks`` / ``-m 'not benchmarks'``."""
    for item in items:
        if Path(__file__).parent in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmarks)


def write_result(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text)
    print(f"\n--- {name} ---\n{text}")


def bench_record(
    benchmark: str,
    config: str,
    wall_ms: float,
    shots: "int | None" = None,
    evolutions: "int | None" = None,
    gates_fused: "int | None" = None,
    kernel: "str | None" = None,
) -> dict:
    """One machine-readable perf record for :func:`write_bench_json`.

    ``gates_fused`` / ``kernel`` mirror the same-named
    :class:`repro.sim.backend.RunInfo` fields (gates eliminated by the
    fusion pass; which apply-kernel ran) when the bench executed
    circuits; ``None`` where inapplicable (e.g. compile-only benches).
    """
    return {
        "benchmark": benchmark,
        "config": config,
        "wall_ms": round(float(wall_ms), 4),
        "shots": shots,
        "evolutions": evolutions,
        "gates_fused": gates_fused,
        "kernel": kernel,
    }


def write_bench_json(name: str, records: "list[dict]") -> None:
    """Append perf records to repo-root ``BENCH_<name>.json``.

    ``name`` is the bench module's short name (e.g. ``fig11_runtime``);
    several tests of one module may call this and their records
    accumulate within a run (stale files are removed at session start).
    """
    for record in records:
        missing = [key for key in BENCH_RECORD_KEYS if key not in record]
        if missing:
            raise ValueError(f"bench record missing {missing}: {record}")
    path = REPO_ROOT / f"BENCH_{name}.json"
    existing = []
    if path.exists():
        existing = json.loads(path.read_text())["records"]
    payload = {
        "schema": "repro-bench-v1",
        "name": name,
        "records": existing + list(records),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n--- BENCH_{name}.json: {len(records)} record(s) appended ---")


def format_figure_series(series, metric_label: str) -> str:
    """Render {algorithm: {compiler: [(n, value)...]}} as aligned rows."""
    lines = []
    for algorithm, by_compiler in series.items():
        lines.append(f"[{algorithm}] {metric_label}")
        sizes = sorted({n for pts in by_compiler.values() for n, _ in pts})
        header = "  compiler " + "".join(f"{n:>14}" for n in sizes)
        lines.append(header)
        for compiler, points in by_compiler.items():
            values = dict(points)
            row = f"  {compiler:<9}" + "".join(
                f"{values.get(n, float('nan')):>14.3f}" for n in sizes
            )
            lines.append(row)
        lines.append("")
    return "\n".join(lines)
