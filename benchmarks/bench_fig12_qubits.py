"""Figure 12: estimated physical qubits per benchmark (§8.3).

Regenerates the paper's physical-kiloqubit series.  Expected shape:
ASDF's qubit counts are comparable to (or below) the baselines at every
size; Quipper pays extra qubits wherever its oracle synthesis allocates
one ancilla per XOR (BV, DJ, Simon, period finding).
"""

from conftest import (
    bench_record,
    format_figure_series,
    write_bench_json,
    write_result,
)

from repro.evaluation import (
    ALGORITHMS,
    PAPER_SIZES,
    evaluate,
    format_series,
    format_shot_report,
    shot_execution_report,
    trajectory_execution_report,
)

_CACHE = {}


def _sweep():
    if "rows" not in _CACHE:
        _CACHE["rows"] = evaluate(sizes=PAPER_SIZES)
    return _CACHE["rows"]


def test_fig12_physical_qubits(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    series = format_series(rows, "physical_kiloqubits")
    write_result(
        "fig12_physical_qubits.txt",
        format_figure_series(series, "physical kiloqubits"),
    )

    by_key = {
        (r.algorithm, r.compiler, r.input_size): r.physical_kiloqubits
        for r in rows
    }
    for algorithm in ALGORITHMS:
        for n in PAPER_SIZES:
            asdf = by_key[(algorithm, "asdf", n)]
            best = min(
                by_key[(algorithm, c, n)]
                for c in ("qiskit", "quipper", "qsharp")
            )
            # Comparable cost to hand-written circuits (paper's claim).
            assert asdf <= 1.5 * best, (algorithm, n)
    # Quipper's ancilla-per-XOR overhead shows on the oracle-heavy
    # benchmarks (paper §8.3).
    for algorithm in ("bv", "dj", "simon"):
        for n in PAPER_SIZES:
            assert (
                by_key[(algorithm, "quipper", n)]
                > by_key[(algorithm, "asdf", n)]
            ), (algorithm, n)


def test_fig12_shot_backend_qubit_scaling():
    """Per-backend shot timing as the (simulated) qubit count grows.

    Fig. 12's theme at simulation scale: the interpreter pays
    O(shots x 2^n) while the vectorized backend pays one evolution, so
    the gap must widen — and never invert — as n grows.
    """
    rows = shot_execution_report(
        algorithms=("bv",), sizes=(4, 6, 8, 10), shots=256
    )
    write_result("fig12_shot_backends.txt", format_shot_report(rows))
    write_bench_json(
        "fig12_qubits",
        [
            bench_record(
                f"{row.algorithm}-n{row.input_size}",
                row.backend,
                row.seconds * 1e3,
                shots=row.shots,
                evolutions=row.evolutions,
            )
            for row in rows
        ],
    )

    by_key = {(r.input_size, r.backend): r for r in rows}
    for n in (4, 6, 8, 10):
        vector = by_key[(n, "statevector")]
        interp = by_key[(n, "interpreter")]
        assert vector.fast_path and vector.evolutions == 1, n
        assert vector.seconds <= interp.seconds, (
            n,
            vector.seconds,
            interp.seconds,
        )


def test_fig12_qubit_reuse_trajectory_scaling():
    """Fig. 12's qubit-reuse theme at simulation scale: a reused qubit
    measured and reset round after round keeps the batched engine at
    one sweep while the interpreter pays one evolution per shot."""
    from repro.qcircuit import qubit_reuse_circuit

    shots = 512
    rounds_axis = (2, 4, 8)
    rows = trajectory_execution_report(
        circuits={
            f"qubit-reuse-r{rounds}": qubit_reuse_circuit(rounds)
            for rounds in rounds_axis
        },
        shots=shots,
    )
    write_result(
        "fig12_qubit_reuse_backends.txt", format_shot_report(rows)
    )
    write_bench_json(
        "fig12_qubits",
        [
            bench_record(
                row.algorithm,
                row.backend + ("-batched" if row.batched else ""),
                row.seconds * 1e3,
                shots=row.shots,
                evolutions=row.evolutions,
            )
            for row in rows
        ],
    )
    by_key = {(r.algorithm, r.backend): r for r in rows}
    for rounds in rounds_axis:
        label = f"qubit-reuse-r{rounds}"
        batched = by_key[(label, "statevector")]
        interp = by_key[(label, "interpreter")]
        assert batched.batched and batched.evolutions == 1, label
        assert interp.evolutions == shots, label
        assert batched.seconds <= interp.seconds, (
            label,
            batched.seconds,
            interp.seconds,
        )
