"""Ablation: Selinger's controlled-iX decomposition (paper §6.5, §8.3).

The paper credits Selinger's scheme for ASDF's (and Q#'s) Grover win.
This bench compiles Grover's with the ``"default"`` and
``"no-selinger"`` pipeline presets and compares T counts and estimated
runtimes, plus the per-pass timing breakdown of the default compile.
"""

import time

from conftest import bench_record, write_bench_json, write_result

from repro import CompileOptions
from repro.algorithms import grover
from repro.resources import estimate_physical_resources


def _ablation(n=16):
    kernel = grover(n)
    start = time.perf_counter()
    with_selinger = kernel.compile(
        options=CompileOptions.preset("default", collect_statistics=True)
    )
    selinger_seconds = time.perf_counter() - start
    start = time.perf_counter()
    without = kernel.compile(pipeline="no-selinger")
    naive_seconds = time.perf_counter() - start
    write_bench_json(
        "ablation_selinger",
        [
            bench_record(
                "grover-n16-compile", "selinger", selinger_seconds * 1e3
            ),
            bench_record(
                "grover-n16-compile", "naive", naive_seconds * 1e3
            ),
        ],
    )

    def t_count(circuit):
        return sum(
            1 for g in circuit.gates if g.name in ("t", "tdg")
        )

    rows = []
    for label, result in (
        ("selinger", with_selinger),
        ("naive", without),
    ):
        circuit = result.decomposed_circuit
        estimate = estimate_physical_resources(circuit)
        rows.append(
            (label, t_count(circuit), estimate.runtime_microseconds,
             estimate.physical_kiloqubits)
        )
    text = "Grover n=16: decomposition ablation\n" + "\n".join(
        f"  {label:<10} T={t:>6}  runtime_us={rt:>12.1f}  kq={kq:>8.1f}"
        for label, t, rt, kq in rows
    )
    text += "\n\nper-pass breakdown (default preset):\n"
    text += with_selinger.statistics.report()
    write_result("ablation_selinger.txt", text)
    return rows


def test_selinger_reduces_t_count(benchmark):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)
    by_label = {label: (t, rt, kq) for label, t, rt, kq in rows}
    assert by_label["selinger"][0] < by_label["naive"][0]
    assert by_label["selinger"][1] <= by_label["naive"][1]
