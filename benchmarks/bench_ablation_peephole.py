"""Ablation: the relaxed peephole optimization (paper §6.5, Fig. 10).

The relaxed peephole turns a multi-controlled X with a |-> target into
a multi-controlled Z without the ancilla, which is what simplifies
``f.sign`` in Bernstein-Vazirani and Grover's.  This bench compiles BV
with the ``"default"`` and ``"no-relaxed-peephole"`` pipeline presets
and reports the per-pass timing breakdown of the default compile.
"""

import time

from conftest import bench_record, write_bench_json, write_result

from repro import CompileOptions
from repro.algorithms import bernstein_vazirani, alternating_secret


def _ablation(n=32):
    kernel = bernstein_vazirani(alternating_secret(n))
    start = time.perf_counter()
    with_relaxed = kernel.compile(
        options=CompileOptions.preset("default", collect_statistics=True)
    )
    relaxed_seconds = time.perf_counter() - start
    start = time.perf_counter()
    without = kernel.compile(pipeline="no-relaxed-peephole")
    disabled_seconds = time.perf_counter() - start
    write_bench_json(
        "ablation_peephole",
        [
            bench_record("bv-n32-compile", "relaxed", relaxed_seconds * 1e3),
            bench_record(
                "bv-n32-compile", "disabled", disabled_seconds * 1e3
            ),
        ],
    )
    rows = [
        ("relaxed", with_relaxed.optimized_circuit.num_qubits,
         len(with_relaxed.optimized_circuit.gates)),
        ("disabled", without.optimized_circuit.num_qubits,
         len(without.optimized_circuit.gates)),
    ]
    text = "BV n=32: relaxed peephole ablation\n" + "\n".join(
        f"  {label:<10} qubits={q:>4}  gates={g:>6}" for label, q, g in rows
    )
    text += "\n\nper-pass breakdown (default preset):\n"
    text += with_relaxed.statistics.report()
    write_result("ablation_peephole.txt", text)
    return rows


def test_relaxed_peephole_removes_ancilla(benchmark):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)
    by_label = {label: (q, g) for label, q, g in rows}
    # The |-> ancilla disappears and the circuit shrinks.
    assert by_label["relaxed"][0] < by_label["disabled"][0]
    assert by_label["relaxed"][1] < by_label["disabled"][1]
