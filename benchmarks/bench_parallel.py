"""Multicore shot sharding + the persistent compile cache (repro.exec).

Two claims, both recorded in BENCH_parallel.json:

- **Shard throughput**: a trajectory workload (mid-circuit measurement,
  so the terminal fast path cannot collapse it to one evolution) sharded
  across a process pool scales with the worker count.  CI runners have
  multiple cores, so the 2-worker run must be >= 1.5x the 1-worker run
  and the 4-worker run >= 2x; on a single-core machine the rows are
  still recorded (the perf trajectory stays complete) but the speedup
  assertions are vacuous.
- **Persistent compile cache**: a *fresh process* whose disk cache is
  warm must compile >= 5x faster than the cold first process — the
  whole point of persisting compile artifacts across processes.  Both
  legs run in subprocesses against a private ``REPRO_CACHE_DIR`` so the
  measurement is honest end-to-end (unpickle + source-fingerprint salt
  included) and never touches the developer's real cache.

The 1-worker leg runs the *identical chunk plan* in-process, so the
throughput comparison isolates process dispatch — not a different
sampling strategy.
"""

import json
import os
import subprocess
import sys
import time

from conftest import REPO_ROOT, bench_record, write_bench_json, write_result

from repro.exec import parallel_run_with_info, shutdown_pools
from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement

#: Shard-throughput workload geometry: 2048 shots of an 11-qubit
#: trajectory circuit under an artificially small 8 MiB batch envelope
#: -> 8 chunks of 256 shots, enough work units to keep 4 workers busy.
SHOTS = 2048
MAX_BATCH_BYTES = 1 << 23
WORKER_COUNTS = (1, 2, 4)


def _trajectory_workload(n: int = 11, layers: int = 2) -> Circuit:
    """Dense enough that per-chunk compute dominates dispatch overhead;
    the mid-circuit measurement + conditioned gate forces the batched
    trajectory engine (the terminal fast path would do one evolution
    total and leave nothing to shard)."""
    circuit = Circuit(num_qubits=n, num_bits=n)
    for layer in range(layers):
        for q in range(n):
            circuit.add(CircuitGate("h", (q,)))
        for q in range(n - 1):
            circuit.add(CircuitGate("x", (q + 1,), controls=(q,)))
        circuit.add(Measurement(0, 0))
        circuit.add(CircuitGate("z", (1,), condition=(0, 1)))
        for q in range(n):
            circuit.add(CircuitGate("rx", (q,), params=(0.3 + 0.1 * layer,)))
    for q in range(n):
        circuit.add(Measurement(q, q))
    return circuit


def test_shard_throughput_vs_workers():
    circuit = _trajectory_workload()
    # Pay pool/process warmup outside the timed region, like the
    # long-lived service the executor is built for.
    for workers in WORKER_COUNTS:
        parallel_run_with_info(circuit, 8, seed=1, workers=workers)

    records, wall = [], {}
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        results, info = parallel_run_with_info(
            circuit, SHOTS, seed=0, workers=workers,
            max_batch_bytes=MAX_BATCH_BYTES,
        )
        seconds = time.perf_counter() - start
        wall[workers] = seconds
        assert len(results) == SHOTS
        assert info.workers == workers
        assert info.chunks == 8
        records.append(
            bench_record(
                f"shard-throughput-{SHOTS}shots",
                f"workers-{workers}",
                seconds * 1e3,
                shots=SHOTS,
                evolutions=info.evolutions,
                kernel=info.kernel,
            )
        )
    shutdown_pools()
    write_bench_json("parallel", records)
    lines = [
        f"workers={workers}: {wall[workers] * 1e3:8.1f} ms "
        f"({wall[1] / wall[workers]:4.2f}x vs 1 worker)"
        for workers in WORKER_COUNTS
    ]
    write_result(
        "parallel_shard_throughput.txt",
        f"trajectory workload: {circuit.num_qubits} qubits, "
        f"{SHOTS} shots, 8 chunks\n" + "\n".join(lines) + "\n",
    )
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert wall[1] / wall[2] >= 1.5, wall
    if cores >= 4:
        assert wall[1] / wall[4] >= 2.0, wall


def _compile_in_fresh_process(cache_dir) -> dict:
    """One cold-or-warm compile measured inside its own interpreter."""
    probe = (
        "import json, sys, time\n"
        "from repro.evaluation import asdf_kernel\n"
        "kernel = asdf_kernel('grover', 32)\n"
        "start = time.perf_counter()\n"
        "result = kernel.compile(pipeline='default', cache=True)\n"
        "elapsed = time.perf_counter() - start\n"
        "print(json.dumps({'ms': elapsed * 1e3,"
        " 'provenance': result.provenance}))\n"
    )
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_DISK_CACHE", None)
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    completed = subprocess.run(
        [sys.executable, "-c", probe],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=300,
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_disk_cache_warms_fresh_processes(tmp_path):
    cold = _compile_in_fresh_process(tmp_path)
    warm = _compile_in_fresh_process(tmp_path)
    assert cold["provenance"] == "compiled"
    assert warm["provenance"] == "disk"
    speedup = cold["ms"] / warm["ms"]
    write_bench_json(
        "parallel",
        [
            bench_record(
                "compile-disk-cache-grover-n32", "cold-process", cold["ms"]
            ),
            bench_record(
                "compile-disk-cache-grover-n32", "warm-process", warm["ms"]
            ),
        ],
    )
    write_result(
        "parallel_disk_cache.txt",
        f"grover n=32 compile in a fresh process\n"
        f"cold (empty REPRO_CACHE_DIR): {cold['ms']:8.1f} ms\n"
        f"warm (persisted artifact):    {warm['ms']:8.1f} ms\n"
        f"speedup: {speedup:.1f}x\n",
    )
    assert speedup >= 5.0, (cold, warm)
