"""Figure 11: estimated fault-tolerant runtime per benchmark (§8.3).

Regenerates the paper's runtime series (one sub-figure per algorithm,
one line per compiler, oracle input sizes 16/32/64/128).  The absolute
microsecond values differ from the Azure Quantum Resource Estimator,
but the qualitative shape must hold: ASDF keeps pace with the
circuit-oriented baselines everywhere, and ASDF/Q# beat Qiskit and
Quipper significantly on Grover's thanks to Selinger's decomposition.
"""

import math
import time

import pytest
from conftest import (
    bench_record,
    format_figure_series,
    write_bench_json,
    write_result,
)

from repro.evaluation import (
    ALGORITHMS,
    PAPER_SIZES,
    SHOT_BACKENDS,
    compiled_circuit,
    evaluate,
    format_series,
    format_shot_report,
    shot_execution_report,
    trajectory_execution_report,
)
from repro.resources import estimate_physical_resources

_CACHE = {}


def _sweep():
    if "rows" not in _CACHE:
        _CACHE["rows"] = evaluate(sizes=PAPER_SIZES)
    return _CACHE["rows"]


def test_fig11_runtime(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    series = format_series(rows, "runtime_seconds")
    write_result(
        "fig11_runtime.txt",
        format_figure_series(
            {a: {c: [(n, v * 1e6) for n, v in pts]
                 for c, pts in by.items()}
             for a, by in series.items()},
            "estimated runtime (microseconds)",
        ),
    )

    by_key = {
        (r.algorithm, r.compiler, r.input_size): r.runtime_seconds
        for r in rows
    }
    # ASDF keeps pace with hand-written circuits (within 2x of the
    # best baseline) on every benchmark and size.
    for algorithm in ALGORITHMS:
        for n in PAPER_SIZES:
            asdf = by_key[(algorithm, "asdf", n)]
            best_baseline = min(
                by_key[(algorithm, c, n)]
                for c in ("qiskit", "quipper", "qsharp")
            )
            assert asdf <= 2.0 * best_baseline, (algorithm, n)
    # The Grover Selinger win: ASDF and Q# beat Qiskit and Quipper.
    for n in (64, 128):
        for fast in ("asdf", "qsharp"):
            for slow in ("qiskit", "quipper"):
                assert (
                    by_key[("grover", fast, n)]
                    < by_key[("grover", slow, n)]
                ), (fast, slow, n)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11_asdf_compile_and_estimate(benchmark, algorithm):
    """Compile-plus-estimate cost of one ASDF point (n = 32)."""

    def point():
        circuit = compiled_circuit(algorithm, "asdf", 32)
        return estimate_physical_resources(circuit)

    estimate = benchmark.pedantic(point, rounds=1, iterations=1)
    assert estimate.runtime_seconds > 0


# ----------------------------------------------------------------------
# Per-backend shot-execution timing (no pytest-benchmark fixture, so
# the CI benchmark-smoke job can run these with plain pytest).
# ----------------------------------------------------------------------
def test_fig11_shot_backend_timing():
    """Per-backend shot execution across benchmarks at a fixed size."""
    rows = shot_execution_report(
        algorithms=("bv", "dj", "grover"), sizes=(5,), shots=512
    )
    write_result("fig11_shot_backends.txt", format_shot_report(rows))
    write_bench_json(
        "fig11_runtime",
        [
            bench_record(
                f"{row.algorithm}-n{row.input_size}",
                row.backend,
                row.seconds * 1e3,
                shots=row.shots,
                evolutions=row.evolutions,
            )
            for row in rows
        ],
    )

    by_backend = {
        (r.algorithm, r.backend): r for r in rows
    }
    for algorithm in ("bv", "dj", "grover"):
        interp = by_backend[(algorithm, "interpreter")]
        vector = by_backend[(algorithm, "statevector")]
        # All three are terminal-measurement circuits: the vectorized
        # backend must take the fast path (one evolution) and must not
        # be slower than per-shot execution.
        assert vector.fast_path and vector.evolutions == 1, algorithm
        assert interp.evolutions == interp.shots, algorithm
        assert vector.seconds <= interp.seconds, (
            algorithm,
            vector.seconds,
            interp.seconds,
        )


def test_fig11_vectorized_speedup_smoke():
    """Acceptance smoke: 4096 shots, one evolution, >= 20x faster."""
    from repro.sim.backend import run_circuit_with_info

    circuit = compiled_circuit("bv", "asdf", 5)
    shots = 4096

    start = time.perf_counter()
    per_shot, interp_info = run_circuit_with_info(
        circuit, shots=shots, seed=0, backend="interpreter"
    )
    interp_seconds = time.perf_counter() - start

    # The vectorized run is ~10 ms; take the best of three so a
    # scheduler stall on a contended CI runner cannot fake a slowdown.
    vector_seconds = math.inf
    for _ in range(3):
        start = time.perf_counter()
        vectorized, vector_info = run_circuit_with_info(
            circuit, shots=shots, seed=0, backend="statevector"
        )
        vector_seconds = min(vector_seconds, time.perf_counter() - start)

    assert vector_info.fast_path
    assert vector_info.evolutions == 1
    speedup = interp_seconds / vector_seconds
    write_result(
        "fig11_vectorized_speedup.txt",
        f"backends: {', '.join(SHOT_BACKENDS)}\n"
        f"circuit: bv n=5 ({circuit.num_qubits} qubits), {shots} shots\n"
        f"interpreter: {interp_seconds:.4f} s "
        f"({interp_info.evolutions} evolutions)\n"
        f"statevector: {vector_seconds:.4f} s "
        f"({vector_info.evolutions} evolution)\n"
        f"speedup: {speedup:.1f}x\n",
    )
    write_bench_json(
        "fig11_runtime",
        [
            bench_record(
                "bv-n5-4096shots", "interpreter", interp_seconds * 1e3,
                shots=shots, evolutions=interp_info.evolutions,
            ),
            bench_record(
                "bv-n5-4096shots", "statevector", vector_seconds * 1e3,
                shots=shots, evolutions=vector_info.evolutions,
            ),
        ],
    )
    assert speedup >= 20.0, speedup
    # Bernstein-Vazirani is deterministic, so both backends must agree
    # on every single shot, not just in distribution.
    assert per_shot == vectorized


def test_fig11_batched_teleport_speedup_smoke():
    """Acceptance smoke for the batched trajectory engine: teleportation
    (mid-circuit measurement + classically conditioned corrections) at
    4096 shots must run as ONE batched sweep and beat the per-shot
    interpreter by >= 5x wall-clock."""
    from repro.qcircuit import teleport_circuit
    from repro.sim.backend import run_circuit_with_info

    circuit = teleport_circuit()
    shots = 4096

    start = time.perf_counter()
    _, interp_info = run_circuit_with_info(
        circuit, shots=shots, seed=0, backend="interpreter"
    )
    interp_seconds = time.perf_counter() - start
    assert interp_info.evolutions == shots and not interp_info.batched

    # Best of three, like the terminal-path smoke, so a scheduler stall
    # on a contended CI runner cannot fake a slowdown.
    batched_seconds = math.inf
    for _ in range(3):
        start = time.perf_counter()
        _, batched_info = run_circuit_with_info(
            circuit, shots=shots, seed=0, backend="statevector"
        )
        batched_seconds = min(
            batched_seconds, time.perf_counter() - start
        )

    assert batched_info.batched and not batched_info.fast_path
    assert batched_info.evolutions == 1
    speedup = interp_seconds / batched_seconds
    write_result(
        "fig11_batched_teleport_speedup.txt",
        f"circuit: teleportation ({circuit.num_qubits} qubits, "
        f"mid-circuit measurement + conditioned gates), {shots} shots\n"
        f"interpreter: {interp_seconds:.4f} s "
        f"({interp_info.evolutions} evolutions)\n"
        f"statevector (batched): {batched_seconds:.4f} s "
        f"({batched_info.evolutions} batched sweep)\n"
        f"speedup: {speedup:.1f}x\n",
    )
    write_bench_json(
        "fig11_runtime",
        [
            bench_record(
                "teleport-4096shots", "interpreter", interp_seconds * 1e3,
                shots=shots, evolutions=interp_info.evolutions,
            ),
            bench_record(
                "teleport-4096shots", "statevector-batched",
                batched_seconds * 1e3,
                shots=shots, evolutions=batched_info.evolutions,
            ),
        ],
    )
    assert speedup >= 5.0, speedup


def test_fig11_trajectory_workloads_batched_never_slower():
    """The batched engine must win on every non-terminal workload."""
    rows = trajectory_execution_report(shots=1024)
    write_result(
        "fig11_trajectory_backends.txt", format_shot_report(rows)
    )
    write_bench_json(
        "fig11_runtime",
        [
            bench_record(
                row.algorithm,
                row.backend + ("-batched" if row.batched else ""),
                row.seconds * 1e3,
                shots=row.shots,
                evolutions=row.evolutions,
            )
            for row in rows
        ],
    )
    by_key = {(r.algorithm, r.backend): r for r in rows}
    for label in ("teleport", "cond-fanout", "qubit-reuse"):
        interp = by_key[(label, "interpreter")]
        batched = by_key[(label, "statevector")]
        assert batched.batched and batched.evolutions == 1, label
        assert interp.evolutions == interp.shots, label
        assert batched.seconds <= interp.seconds, (
            label,
            batched.seconds,
            interp.seconds,
        )
