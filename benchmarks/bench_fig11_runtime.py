"""Figure 11: estimated fault-tolerant runtime per benchmark (§8.3).

Regenerates the paper's runtime series (one sub-figure per algorithm,
one line per compiler, oracle input sizes 16/32/64/128).  The absolute
microsecond values differ from the Azure Quantum Resource Estimator,
but the qualitative shape must hold: ASDF keeps pace with the
circuit-oriented baselines everywhere, and ASDF/Q# beat Qiskit and
Quipper significantly on Grover's thanks to Selinger's decomposition.
"""

import pytest
from conftest import format_figure_series, write_result

from repro.evaluation import (
    ALGORITHMS,
    PAPER_SIZES,
    compiled_circuit,
    evaluate,
    format_series,
)
from repro.resources import estimate_physical_resources

_CACHE = {}


def _sweep():
    if "rows" not in _CACHE:
        _CACHE["rows"] = evaluate(sizes=PAPER_SIZES)
    return _CACHE["rows"]


def test_fig11_runtime(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    series = format_series(rows, "runtime_seconds")
    write_result(
        "fig11_runtime.txt",
        format_figure_series(
            {a: {c: [(n, v * 1e6) for n, v in pts]
                 for c, pts in by.items()}
             for a, by in series.items()},
            "estimated runtime (microseconds)",
        ),
    )

    by_key = {
        (r.algorithm, r.compiler, r.input_size): r.runtime_seconds
        for r in rows
    }
    # ASDF keeps pace with hand-written circuits (within 2x of the
    # best baseline) on every benchmark and size.
    for algorithm in ALGORITHMS:
        for n in PAPER_SIZES:
            asdf = by_key[(algorithm, "asdf", n)]
            best_baseline = min(
                by_key[(algorithm, c, n)]
                for c in ("qiskit", "quipper", "qsharp")
            )
            assert asdf <= 2.0 * best_baseline, (algorithm, n)
    # The Grover Selinger win: ASDF and Q# beat Qiskit and Quipper.
    for n in (64, 128):
        for fast in ("asdf", "qsharp"):
            for slow in ("qiskit", "quipper"):
                assert (
                    by_key[("grover", fast, n)]
                    < by_key[("grover", slow, n)]
                ), (fast, slow, n)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11_asdf_compile_and_estimate(benchmark, algorithm):
    """Compile-plus-estimate cost of one ASDF point (n = 32)."""

    def point():
        circuit = compiled_circuit(algorithm, "asdf", 32)
        return estimate_physical_resources(circuit)

    estimate = benchmark.pedantic(point, rounds=1, iterations=1)
    assert estimate.runtime_seconds > 0
