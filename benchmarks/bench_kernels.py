"""Gate-apply kernels and the compile-time fusion pass, measured.

Two layers of PR 6's perf work (docs/performance.md), benchmarked:

- **Apply-kernel throughput**: raw :meth:`Kernel.apply` wall time per
  sweep, swept over qubit count x registered kernel x fused/unfused
  matrix size.  The numba configurations appear only when numba is
  importable (the registry's availability rule).
- **Fusion speedup**: a deep rotation-heavy circuit executed unfused
  vs through ``fuse_adjacent_gates`` (the ``default`` pipeline's
  execution form) on the batched trajectory engine.  Asserts the
  acceptance criterion: fusion buys >= 1.5x wall-clock.

Writes ``BENCH_kernels.json`` (in the ``EXPECTED_BENCH_JSON``
manifest) so the CI perf-regression gate tracks both layers.
"""

import time

import numpy as np
from conftest import bench_record, write_bench_json, write_result

from repro.qcircuit.circuit import Circuit, CircuitGate, Measurement, Reset
from repro.qcircuit.fusion import fuse_adjacent_gates, fused_gate_savings
from repro.sim.backend import run_circuit_with_info
from repro.sim.kernels import get_kernel, numba_available

#: Qubit counts for the apply-throughput sweep.
APPLY_SIZES = (6, 10, 12)

#: Matrix applications per timed sweep.
APPLY_REPS = 200


def _bench_kernels():
    names = ["numpy"] + (["numba"] if numba_available() else [])
    rows = []
    rng = np.random.default_rng(0)
    single = np.linalg.qr(
        rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
    )[0]
    block = np.linalg.qr(
        rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
    )[0]
    for name in names:
        kernel = get_kernel(name)
        for n in APPLY_SIZES:
            state = rng.standard_normal(
                (2,) * n
            ) + 1j * rng.standard_normal((2,) * n)
            # Unfused: APPLY_REPS single-qubit sweeps round-robin.
            # Fused: the same work shape as post-fusion execution —
            # one 3-qubit block per 3 single-qubit gates.
            configs = (
                ("unfused", single, [(q % n,) for q in range(APPLY_REPS)]),
                (
                    "fused",
                    block,
                    [
                        tuple((q + i) % n for i in range(3))
                        for q in range(0, APPLY_REPS, 3)
                    ],
                ),
            )
            for mode, matrix, target_list in configs:
                # Warm up (JIT compilation must not be timed).
                kernel.apply(state, matrix, target_list[0])
                start = time.perf_counter()
                for targets in target_list:
                    kernel.apply(state, matrix, targets)
                wall_ms = (time.perf_counter() - start) * 1e3
                rows.append((f"apply-n{n}", f"{name}-{mode}", wall_ms, name))
    return rows


def _deep_circuit(num_qubits=10, layers=20):
    """Deep, rotation-heavy, and non-terminal (the leading reset keeps
    the terminal-measurement fast path — which fuses on its own — out
    of the measurement), so the timing isolates the fusion pass."""
    circuit = Circuit(num_qubits, num_qubits)
    circuit.add(Reset(0))
    for layer in range(layers):
        for q in range(num_qubits):
            circuit.add(
                CircuitGate("rx", (q,), params=(0.1 + 0.01 * q + layer,))
            )
            circuit.add(CircuitGate("rz", (q,), params=(0.2 + 0.01 * q,)))
            circuit.add(CircuitGate("h", (q,)))
        for q in range(num_qubits - 1):
            circuit.add(CircuitGate("x", (q + 1,), controls=(q,)))
    for q in range(num_qubits):
        circuit.add(Measurement(q, q))
    return circuit


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _bench_fusion(shots=64):
    circuit = _deep_circuit()
    fused = fuse_adjacent_gates(circuit)
    savings = fused_gate_savings(fused)
    unfused_s, (_, unfused_info) = _best_of(
        lambda: run_circuit_with_info(
            circuit, shots, seed=0, backend="statevector"
        )
    )
    fused_s, (_, fused_info) = _best_of(
        lambda: run_circuit_with_info(
            fused, shots, seed=0, backend="statevector"
        )
    )
    records = [
        bench_record(
            "deep-circuit",
            "unfused",
            unfused_s * 1e3,
            shots=shots,
            evolutions=unfused_info.evolutions,
            gates_fused=0,
            kernel=unfused_info.kernel,
        ),
        bench_record(
            "deep-circuit",
            "fused",
            fused_s * 1e3,
            shots=shots,
            evolutions=fused_info.evolutions,
            gates_fused=savings,
            kernel=fused_info.kernel,
        ),
    ]
    speedup = unfused_s / fused_s
    summary = (
        f"deep circuit ({circuit.num_qubits} qubits, "
        f"{len(circuit.gates)} gates, {shots} shots, batched engine)\n"
        f"  unfused: {unfused_s * 1e3:8.1f} ms\n"
        f"  fused:   {fused_s * 1e3:8.1f} ms "
        f"({savings} gates fused away)\n"
        f"  speedup: {speedup:.2f}x (acceptance floor: 1.5x)"
    )
    return records, summary, speedup


def test_kernel_apply_throughput(benchmark):
    rows = benchmark.pedantic(_bench_kernels, rounds=1, iterations=1)
    write_bench_json(
        "kernels",
        [
            bench_record(name, config, wall_ms, kernel=kernel)
            for name, config, wall_ms, kernel in rows
        ],
    )
    lines = [
        f"  {name:<12} {config:<16} {wall_ms:8.2f} ms / {APPLY_REPS} sweeps"
        for name, config, wall_ms, _ in rows
    ]
    write_result(
        "kernels_throughput.txt",
        "gate-apply throughput\n" + "\n".join(lines),
    )
    assert rows  # at least the numpy kernel always runs


def test_fusion_speedup_deep_circuit(benchmark):
    records, summary, speedup = benchmark.pedantic(
        _bench_fusion, rounds=1, iterations=1
    )
    write_bench_json("kernels", records)
    write_result("kernels_fusion_speedup.txt", summary)
    # The PR's acceptance criterion: compile-time fusion must buy at
    # least 1.5x wall-clock on a deep circuit.
    assert speedup >= 1.5, summary
