"""Assert the full benchmark harness wrote its whole perf trajectory.

Run after ``python -m pytest benchmarks -s``::

    python benchmarks/check_bench_json.py

Exits non-zero (listing what is missing or malformed) unless every
file in ``conftest.EXPECTED_BENCH_JSON`` exists at the repo root,
parses, and carries at least one well-formed record.  CI runs this
before uploading the ``bench-perf-trajectory`` artifact, so a bench
module that silently stops emitting JSON (the pytest-benchmark
fixture-error failure mode this guards against) fails the build
instead of shrinking the artifact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import BENCH_RECORD_KEYS, EXPECTED_BENCH_JSON, REPO_ROOT


def main() -> int:
    problems = []
    for name in EXPECTED_BENCH_JSON:
        path = REPO_ROOT / name
        if not path.exists():
            problems.append(f"{name}: missing")
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            problems.append(f"{name}: unparsable ({error})")
            continue
        records = payload.get("records")
        if not records:
            problems.append(f"{name}: no records")
            continue
        for record in records:
            missing = [key for key in BENCH_RECORD_KEYS if key not in record]
            if missing:
                problems.append(f"{name}: record missing {missing}")
                break
        else:
            print(f"ok: {name} ({len(records)} record(s))")
    stray = sorted(
        path.name
        for path in REPO_ROOT.glob("BENCH_*.json")
        if path.name not in EXPECTED_BENCH_JSON
    )
    for name in stray:
        problems.append(
            f"{name}: not in EXPECTED_BENCH_JSON (add the new bench "
            f"module to benchmarks/conftest.py)"
        )
    if problems:
        print("perf-trajectory check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"all {len(EXPECTED_BENCH_JSON)} BENCH_*.json files present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
