"""Assert the perf trajectory is complete — and hasn't regressed.

Run after ``python -m pytest benchmarks -s``::

    python benchmarks/check_bench_json.py                    # schema check
    python benchmarks/check_bench_json.py --compare          # + perf gate
    python benchmarks/check_bench_json.py --update-baselines # refresh
    python benchmarks/check_bench_json.py --self-test        # gate sanity

**Schema check** (always): every file in
``conftest.EXPECTED_BENCH_JSON`` must exist at the repo root, parse,
and carry at least one well-formed record.  CI runs this before
uploading the ``bench-perf-trajectory`` artifact, so a bench module
that silently stops emitting JSON fails the build instead of shrinking
the artifact.

**Regression gate** (``--compare``): every record is keyed by
``(benchmark, config)`` and its ``wall_ms`` (the minimum across a
run's records for that key — the least-noisy statistic) is compared to
the committed baseline under ``benchmarks/baselines/``.  A current
wall time more than ``--max-ratio`` (default 2.0, generous for CI
jitter; env ``BENCH_MAX_RATIO`` overrides) times its baseline fails
the build.  Keys whose baseline wall time is below ``--min-wall-ms``
(default 5.0) are skipped — sub-5ms timings are jitter, not signal.
A key present in the baseline but absent from the current run also
fails (a renamed benchmark must refresh its baseline); new keys only
warn.

**Refreshing baselines** (``--update-baselines``): copies the current
``BENCH_*.json`` files into ``benchmarks/baselines/``.  Do this when a
benchmark is intentionally slower (more work measured), renamed, or
added — and say why in the commit message.  See docs/performance.md.

**Self-test** (``--self-test``): proves the gate has teeth by
synthesizing a baseline 3x *faster* than the current run (so the
current run is a >2x regression against it) and asserting the
comparison fails, then an identical baseline and asserting it passes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import BENCH_RECORD_KEYS, EXPECTED_BENCH_JSON, REPO_ROOT

BASELINE_DIR = Path(__file__).parent / "baselines"

#: Fail when current wall_ms exceeds baseline by more than this factor.
DEFAULT_MAX_RATIO = 2.0

#: Baseline entries faster than this are jitter-dominated: skip them.
DEFAULT_MIN_WALL_MS = 5.0

MAX_RATIO_ENV_VAR = "BENCH_MAX_RATIO"


def check_schema(
    expected: "tuple[str, ...]" = EXPECTED_BENCH_JSON,
    include_stray: bool = True,
) -> list[str]:
    """The original presence/schema check; returns problem strings.

    ``expected`` narrows the manifest (the ``--only`` flag: a CI job
    that runs a single bench module checks just that module's file);
    the stray-file check only makes sense against the full manifest.
    """
    problems = []
    for name in expected:
        path = REPO_ROOT / name
        if not path.exists():
            problems.append(f"{name}: missing")
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            problems.append(f"{name}: unparsable ({error})")
            continue
        records = payload.get("records")
        if not records:
            problems.append(f"{name}: no records")
            continue
        for record in records:
            missing = [key for key in BENCH_RECORD_KEYS if key not in record]
            if missing:
                problems.append(f"{name}: record missing {missing}")
                break
        else:
            print(f"ok: {name} ({len(records)} record(s))")
    if include_stray:
        stray = sorted(
            path.name
            for path in REPO_ROOT.glob("BENCH_*.json")
            if path.name not in EXPECTED_BENCH_JSON
        )
        for name in stray:
            problems.append(
                f"{name}: not in EXPECTED_BENCH_JSON (add the new bench "
                f"module to benchmarks/conftest.py)"
            )
    return problems


def wall_times(path: Path) -> dict[tuple[str, str], float]:
    """``{(benchmark, config): min wall_ms}`` for one BENCH_*.json."""
    payload = json.loads(path.read_text())
    times: dict[tuple[str, str], float] = {}
    for record in payload.get("records", ()):
        key = (str(record["benchmark"]), str(record["config"]))
        wall = float(record["wall_ms"])
        if key not in times or wall < times[key]:
            times[key] = wall
    return times


def compare_file(
    current_path: Path,
    baseline_path: Path,
    max_ratio: float,
    min_wall_ms: float,
) -> tuple[list[str], list[str]]:
    """Gate one BENCH file; returns ``(problems, warnings)``."""
    problems: list[str] = []
    warnings: list[str] = []
    name = current_path.name
    current = wall_times(current_path)
    baseline = wall_times(baseline_path)
    for key, base_wall in sorted(baseline.items()):
        label = f"{name}:{key[0]}/{key[1]}"
        wall = current.get(key)
        if wall is None:
            problems.append(
                f"{label}: in baseline but not in current run "
                f"(renamed/removed benchmarks must refresh baselines)"
            )
            continue
        if base_wall < min_wall_ms:
            continue  # jitter-dominated; no signal to gate on
        ratio = wall / base_wall
        if ratio > max_ratio:
            problems.append(
                f"{label}: {wall:.1f}ms vs baseline {base_wall:.1f}ms "
                f"({ratio:.2f}x > {max_ratio:.2f}x)"
            )
        else:
            print(f"ok: {label} {wall:.1f}ms vs {base_wall:.1f}ms "
                  f"({ratio:.2f}x)")
    for key in sorted(set(current) - set(baseline)):
        warnings.append(
            f"{name}:{key[0]}/{key[1]}: no baseline entry (run "
            f"--update-baselines to start gating it)"
        )
    return problems, warnings


def compare_all(
    baseline_dir: Path, max_ratio: float, min_wall_ms: float
) -> list[str]:
    """Gate every expected BENCH file; returns problem strings."""
    if not baseline_dir.is_dir():
        return [
            f"baseline directory {baseline_dir} missing (run "
            f"`python benchmarks/check_bench_json.py --update-baselines` "
            f"after a benchmark run, and commit it)"
        ]
    problems: list[str] = []
    for name in EXPECTED_BENCH_JSON:
        current_path = REPO_ROOT / name
        baseline_path = baseline_dir / name
        if not current_path.exists():
            # The schema check already reports the missing file.
            continue
        if not baseline_path.exists():
            problems.append(f"{name}: no committed baseline")
            continue
        file_problems, file_warnings = compare_file(
            current_path, baseline_path, max_ratio, min_wall_ms
        )
        problems.extend(file_problems)
        for warning in file_warnings:
            print(f"warning: {warning}", file=sys.stderr)
    return problems


def update_baselines(baseline_dir: Path) -> int:
    """Copy the current BENCH_*.json files over the committed baselines."""
    missing = [
        name
        for name in EXPECTED_BENCH_JSON
        if not (REPO_ROOT / name).exists()
    ]
    if missing:
        print(
            f"cannot update baselines, current run incomplete: {missing}\n"
            f"run `python -m pytest benchmarks -s` first",
            file=sys.stderr,
        )
        return 1
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for name in EXPECTED_BENCH_JSON:
        (baseline_dir / name).write_text((REPO_ROOT / name).read_text())
        print(f"updated: {baseline_dir / name}")
    return 0


def self_test(max_ratio: float, min_wall_ms: float) -> int:
    """Prove the gate fails on a synthetic >2x regression.

    Builds a throwaway baseline whose wall times are the current run's
    divided by ``max_ratio * 1.5`` (so the current run reads as a 3x
    regression at the default ratio) and asserts the comparison fails;
    then an identical baseline and asserts it passes.  Entries are
    lifted above the jitter floor so the synthetic regression cannot be
    skipped as noise.
    """
    import shutil
    import tempfile

    present = [
        name for name in EXPECTED_BENCH_JSON if (REPO_ROOT / name).exists()
    ]
    if not present:
        print(
            "self-test needs at least one current BENCH_*.json; run "
            "`python -m pytest benchmarks -s` first",
            file=sys.stderr,
        )
        return 1
    scratch = Path(tempfile.mkdtemp(prefix="bench-selftest-"))
    try:
        slow_dir = scratch / "regressed"
        same_dir = scratch / "identical"
        slow_dir.mkdir()
        same_dir.mkdir()
        floor = max(min_wall_ms, 1.0)
        for name in EXPECTED_BENCH_JSON:
            source = REPO_ROOT / name
            if not source.exists():
                continue
            payload = json.loads(source.read_text())
            same_payload = json.loads(source.read_text())
            for record, same_record in zip(
                payload.get("records", ()),
                same_payload.get("records", ()),
            ):
                # Lift above the jitter floor, then shrink the baseline
                # so the (unchanged) current run reads as 3x slower.
                wall = max(float(record["wall_ms"]), floor * 10.0)
                record["wall_ms"] = wall / (max_ratio * 1.5)
                same_record["wall_ms"] = wall
            (slow_dir / name).write_text(json.dumps(payload))
            (same_dir / name).write_text(json.dumps(same_payload))

        # The synthetic-regression comparison MUST fail ...
        lifted = _with_lifted_current(scratch, floor)
        problems = _compare_dirs(lifted, slow_dir, max_ratio, min_wall_ms)
        if not problems:
            print(
                "self-test FAILED: a synthetic 3x regression passed the "
                "gate",
                file=sys.stderr,
            )
            return 1
        print(f"self-test: synthetic regression caught "
              f"({len(problems)} violation(s)) — gate has teeth")
        # ... and the identical baseline must pass.
        problems = _compare_dirs(lifted, same_dir, max_ratio, min_wall_ms)
        if problems:
            print(
                "self-test FAILED: identical baseline reported "
                f"regressions: {problems}",
                file=sys.stderr,
            )
            return 1
        print("self-test: identical baseline passes — gate is not "
              "trigger-happy")
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _with_lifted_current(scratch: Path, floor: float) -> Path:
    """A copy of the current BENCH files with wall times lifted above
    the jitter floor, mirroring the self-test's baseline transform."""
    lifted = scratch / "current"
    lifted.mkdir()
    for name in EXPECTED_BENCH_JSON:
        source = REPO_ROOT / name
        if not source.exists():
            continue
        payload = json.loads(source.read_text())
        for record in payload.get("records", ()):
            record["wall_ms"] = max(float(record["wall_ms"]), floor * 10.0)
        (lifted / name).write_text(json.dumps(payload))
    return lifted


def _compare_dirs(
    current_dir: Path, baseline_dir: Path, max_ratio: float,
    min_wall_ms: float,
) -> list[str]:
    problems: list[str] = []
    for name in EXPECTED_BENCH_JSON:
        current_path = current_dir / name
        baseline_path = baseline_dir / name
        if not current_path.exists() or not baseline_path.exists():
            continue
        file_problems, _ = compare_file(
            current_path, baseline_path, max_ratio, min_wall_ms
        )
        problems.extend(file_problems)
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compare",
        action="store_true",
        help="gate current BENCH_*.json against committed baselines",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="copy current BENCH_*.json into benchmarks/baselines/",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="assert a synthetic 3x-slower baseline fails the gate",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=BASELINE_DIR,
        help=f"baseline directory (default: {BASELINE_DIR})",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=float(
            os.environ.get(MAX_RATIO_ENV_VAR, DEFAULT_MAX_RATIO)
        ),
        help=f"regression threshold (default {DEFAULT_MAX_RATIO}, env "
        f"{MAX_RATIO_ENV_VAR} overrides)",
    )
    parser.add_argument(
        "--min-wall-ms",
        type=float,
        default=DEFAULT_MIN_WALL_MS,
        help=f"skip baseline entries faster than this "
        f"(default {DEFAULT_MIN_WALL_MS}ms)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="BENCH_FILE",
        help="check only these BENCH_*.json files (for CI jobs that run "
        "a single bench module); skips the stray-file check",
    )
    args = parser.parse_args(argv)

    if args.update_baselines:
        return update_baselines(args.baseline_dir)

    expected = tuple(args.only) if args.only else EXPECTED_BENCH_JSON
    unknown = sorted(set(expected) - set(EXPECTED_BENCH_JSON))
    if unknown:
        print(
            f"--only names files outside the manifest: {unknown}",
            file=sys.stderr,
        )
        return 1
    problems = check_schema(expected, include_stray=args.only is None)
    if args.compare and not problems:
        problems.extend(
            compare_all(args.baseline_dir, args.max_ratio, args.min_wall_ms)
        )
    if problems:
        print("perf-trajectory check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"all {len(expected)} checked BENCH_*.json files present")

    if args.self_test:
        return self_test(args.max_ratio, args.min_wall_ms)
    return 0


if __name__ == "__main__":
    sys.exit(main())
