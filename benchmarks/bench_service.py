"""The async execution service under load and under chaos.

Two claims, both recorded in BENCH_service.json:

- **Throughput and tail latency**: a fixed batch of compile/run
  requests (bv n=6, 128 shots each) is pushed through a real
  :class:`~repro.service.service.ExecutionService` at several
  concurrency levels; requests/sec and p50/p99 response latency are
  recorded at each level.  Zero requests may fail — backpressure is
  configured away (queue bound >= batch), so every response must be
  ``ok``.
- **Graceful degradation has a floor**: the same batch with a 5%
  deterministic ``worker_crash`` plan must (a) complete **100%** of
  requests successfully, (b) return **bit-identical histograms** to
  the clean run for every request id, and (c) sustain at least **70%**
  of the clean run's throughput — recovery is retries absorbing
  faults, not a collapse to serial or a pile of errors.

Chunks run in-process (``use_processes=False``): the benchmark
measures the service machinery (admission, deadlines, retry waves),
not process-pool spawn time, and injected crashes raise
:class:`~repro.errors.FaultInjectedError` deterministically.  Real
``BrokenProcessPool`` recovery is covered by tests/exec/test_faults.py.
"""

import asyncio
import time

from conftest import bench_record, write_bench_json, write_result

from repro.exec.faults import FaultPlan
from repro.exec.retry import RetryPolicy
from repro.service import ExecutionService, ServiceClient, ServiceConfig

REQUESTS = 48
SHOTS = 128
N = 6
CONCURRENCY_LEVELS = (1, 4, 16)
CHAOS_CONCURRENCY = 4
CHAOS_RATE = 0.05
MIN_CHAOS_THROUGHPUT_FRACTION = 0.70

#: Short backoffs: the bench measures recovery overhead, not sleeps.
RETRY = RetryPolicy(backoff_base=0.002, backoff_cap=0.02)


def _config(fault_plan=None) -> ServiceConfig:
    return ServiceConfig(
        use_processes=False,
        parallel_workers=2,
        executors=4,
        queue_limit=2 * REQUESTS,
        retry=RETRY,
        fault_plan=fault_plan,
    )


async def _drive(config, concurrency):
    """One batch: returns (wall_s, latencies_s, responses_by_id)."""
    async with ExecutionService(config) as service:
        client = ServiceClient(service)
        # Warm the compile cache outside the timed region, like any
        # long-lived service: steady-state throughput is the claim.
        warm = await client.run(id="warm", kernel="bv", n=N, shots=8)
        assert warm["ok"], warm
        gate = asyncio.Semaphore(concurrency)
        latencies = [0.0] * REQUESTS
        responses = {}

        async def one(index):
            async with gate:
                start = time.perf_counter()
                response = await client.run(
                    id=index, kernel="bv", n=N, shots=SHOTS, seed=index
                )
                latencies[index] = time.perf_counter() - start
                responses[index] = response

        start = time.perf_counter()
        await asyncio.gather(*(one(i) for i in range(REQUESTS)))
        wall = time.perf_counter() - start
    return wall, latencies, responses


def _percentile(sorted_values, fraction):
    index = min(
        len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _run_batch(config, concurrency):
    wall, latencies, responses = asyncio.run(
        _drive(config, concurrency)
    )
    failed = [r for r in responses.values() if not r["ok"]]
    assert not failed, failed[:3]
    ordered = sorted(latencies)
    return {
        "wall_s": wall,
        "rps": REQUESTS / wall,
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "counts": {i: responses[i]["result"]["counts"]
                   for i in range(REQUESTS)},
        "retries": sum(
            responses[i]["result"]["info"]["retries"]
            for i in range(REQUESTS)
        ),
        "faults": sum(
            responses[i]["result"]["info"]["faults_injected"]
            for i in range(REQUESTS)
        ),
    }


def test_service_throughput_and_tail_latency():
    records, lines = [], []
    for concurrency in CONCURRENCY_LEVELS:
        batch = _run_batch(_config(), concurrency)
        records.append(
            bench_record(
                f"service-throughput-{REQUESTS}req-bv{N}",
                f"concurrency-{concurrency}",
                batch["wall_s"] * 1e3,
                shots=REQUESTS * SHOTS,
            )
        )
        records.append(
            bench_record(
                "service-latency-p99",
                f"concurrency-{concurrency}",
                batch["p99_ms"],
                shots=SHOTS,
            )
        )
        lines.append(
            f"concurrency={concurrency:2d}: "
            f"{batch['rps']:7.1f} req/s  "
            f"p50={batch['p50_ms']:6.1f} ms  "
            f"p99={batch['p99_ms']:6.1f} ms"
        )
    write_bench_json("service", records)
    write_result(
        "service_throughput.txt",
        f"{REQUESTS} requests (bv n={N}, {SHOTS} shots each), "
        f"in-process chunks\n" + "\n".join(lines) + "\n",
    )


def test_service_chaos_floor():
    clean = _run_batch(_config(), CHAOS_CONCURRENCY)
    plan = FaultPlan({"worker_crash": CHAOS_RATE}, seed=0)
    chaos = _run_batch(_config(fault_plan=plan), CHAOS_CONCURRENCY)

    # (a) 100% completion is enforced inside _run_batch; (b) chaos
    # results are bit-identical per request id (the retry layer never
    # reseeds data); (c) throughput keeps a floor.
    assert chaos["counts"] == clean["counts"]
    assert chaos["faults"] >= 1, "5% plan injected nothing; raise REQUESTS"
    ratio = chaos["rps"] / clean["rps"]
    assert ratio >= MIN_CHAOS_THROUGHPUT_FRACTION, (
        f"chaos throughput {chaos['rps']:.1f} req/s is "
        f"{ratio:.2f}x of clean {clean['rps']:.1f} req/s "
        f"(floor {MIN_CHAOS_THROUGHPUT_FRACTION})"
    )

    write_bench_json(
        "service",
        [
            bench_record(
                f"service-chaos-{int(CHAOS_RATE * 100)}pct-crash",
                "clean",
                clean["wall_s"] * 1e3,
                shots=REQUESTS * SHOTS,
            ),
            bench_record(
                f"service-chaos-{int(CHAOS_RATE * 100)}pct-crash",
                "chaos",
                chaos["wall_s"] * 1e3,
                shots=REQUESTS * SHOTS,
            ),
        ],
    )
    write_result(
        "service_chaos.txt",
        f"{REQUESTS} requests at concurrency {CHAOS_CONCURRENCY}, "
        f"{int(CHAOS_RATE * 100)}% injected worker crashes\n"
        f"clean: {clean['rps']:7.1f} req/s\n"
        f"chaos: {chaos['rps']:7.1f} req/s "
        f"({ratio:.2f}x of clean; floor "
        f"{MIN_CHAOS_THROUGHPUT_FRACTION})\n"
        f"faults injected: {chaos['faults']}, "
        f"retries: {chaos['retries']}, failed requests: 0\n"
        f"histograms: bit-identical to clean for all "
        f"{REQUESTS} request ids\n",
    )
