"""Variational sweeps: compile-cache amortization and batched grids.

Two layers of the symbolic-parameter work (docs/variational.md),
measured:

- **Compile amortization**: a 120-point angle sweep of a parameterized
  kernel run two ways — one cached symbolic compile + ``bind()`` per
  point, vs a fresh compile per point (what a user without symbolic
  parameters is forced into).  Asserts the acceptance criterion:
  compile-once is >= 5x faster.
- **Batched grid evaluation**: a VQE energy landscape evaluated at G
  points through one ``(G, 2, …, 2)`` batched state vs G independent
  statevector runs.

Writes ``BENCH_variational.json`` (in the ``EXPECTED_BENCH_JSON``
manifest) so the CI perf-regression gate tracks both.
"""

import time

import numpy as np
from conftest import bench_record, write_bench_json, write_result

from repro import (
    Parameter,
    angle,
    bit,
    clear_compile_cache,
    compile_kernel,
    qpu,
)
from repro.sim.backend import run_circuit_with_info
from repro.variational import (
    evaluate_grid,
    expectation,
    hardware_efficient_ansatz,
    ising_observable,
)

SWEEP_POINTS = 120
GRID_POINTS = 200
SHOTS = 16

theta = Parameter("theta")


# Three phase-carrying basis translations over 8 qubits: enough
# synthesis work per compile that the amortization (not the simulator)
# is what the compile-once/compile-per-point ratio measures — the
# realistic variational shape, where the ansatz compiles once and the
# loop evaluates it thousands of times.
@qpu(theta)
def sweep_kernel(theta: angle) -> bit[8]:
    return ('p'[8]
            | {'pppppppp'} >> {'pppppppp'@theta}
            | {'mmmmmmmm'} >> {'mmmmmmmm'@theta}
            | {'pppppppp'} >> {'pppppppp'@theta}
            | std[8].measure)


def _run_point(result, degrees: float) -> None:
    bound = result.bind(theta=degrees)
    run_circuit_with_info(
        bound.execution_circuit, shots=SHOTS, seed=0
    )


def _bench_sweep():
    angles = np.linspace(0.0, 360.0, SWEEP_POINTS)

    # disk=True is the explicit cold-cache mode: clearing only the
    # in-memory layer would let the persistent disk cache
    # (repro.exec.diskcache) serve every "recompile" as a fast
    # unpickle, and the per-point leg would no longer measure
    # compilation at all.
    clear_compile_cache(disk=True)
    start = time.perf_counter()
    for degrees in angles:
        result = compile_kernel(sweep_kernel, cache=True)
        _run_point(result, float(degrees))
    once_s = time.perf_counter() - start

    start = time.perf_counter()
    for degrees in angles:
        clear_compile_cache(disk=True)
        result = compile_kernel(sweep_kernel, cache=True)
        _run_point(result, float(degrees))
    per_point_s = time.perf_counter() - start

    records = [
        bench_record(
            "param-sweep", "compile-once", once_s * 1e3, shots=SHOTS
        ),
        bench_record(
            "param-sweep", "compile-per-point", per_point_s * 1e3,
            shots=SHOTS,
        ),
    ]
    speedup = per_point_s / once_s
    summary = (
        f"{SWEEP_POINTS}-point angle sweep ({SHOTS} shots/point)\n"
        f"  compile-once + bind(): {once_s * 1e3:9.1f} ms\n"
        f"  compile-per-point:     {per_point_s * 1e3:9.1f} ms\n"
        f"  speedup: {speedup:.1f}x (acceptance floor: 5x)"
    )
    return records, summary, speedup


def _bench_grid():
    circuit, params = hardware_efficient_ansatz(6, layers=2)
    observable = ising_observable(6, [(q, q + 1) for q in range(5)], h=0.5)
    rng = np.random.default_rng(0)
    grid = {
        p.name: rng.uniform(-np.pi, np.pi, GRID_POINTS) for p in params
    }

    start = time.perf_counter()
    batched = evaluate_grid(circuit, observable, grid)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    looped = np.array(
        [
            expectation(
                circuit,
                observable,
                {name: grid[name][g] for name in grid},
            )
            for g in range(GRID_POINTS)
        ]
    )
    looped_s = time.perf_counter() - start
    assert np.abs(batched - looped).max() < 1e-9

    records = [
        bench_record(
            "vqe-grid", "batched", batched_s * 1e3,
            evolutions=1,
        ),
        bench_record(
            "vqe-grid", "per-point", looped_s * 1e3,
            evolutions=GRID_POINTS,
        ),
    ]
    summary = (
        f"{GRID_POINTS}-point energy grid "
        f"({circuit.num_qubits} qubits, {len(params)} params)\n"
        f"  batched (G,2,...,2): {batched_s * 1e3:9.1f} ms\n"
        f"  per-point loop:      {looped_s * 1e3:9.1f} ms\n"
        f"  speedup: {looped_s / batched_s:.1f}x"
    )
    return records, summary


def test_compile_once_amortizes_sweep(benchmark):
    records, summary, speedup = benchmark.pedantic(
        _bench_sweep, rounds=1, iterations=1
    )
    write_bench_json("variational", records)
    write_result("variational_sweep.txt", summary)
    # The PR's acceptance criterion: one symbolic compile must beat
    # recompiling per sweep point by at least 5x.
    assert speedup >= 5.0, summary


def test_batched_grid_evaluation(benchmark):
    records, summary = benchmark.pedantic(
        _bench_grid, rounds=1, iterations=1
    )
    write_bench_json("variational", records)
    write_result("variational_grid.txt", summary)
    assert records[0]["wall_ms"] > 0.0
