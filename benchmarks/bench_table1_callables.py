"""Table 1: QIR callable intrinsics per compiler configuration (§8.2).

Regenerates the paper's table comparing the Classic Q# QDK, ASDF with
inlining disabled, and ASDF with inlining enabled.  The expected shape:
Q# and ASDF-no-opt emit nonzero callable create/invoke counts; fully
inlined ASDF emits zero for every benchmark.
"""

import time

from conftest import bench_record, write_bench_json, write_result

from repro.evaluation import format_table1, table1


def _generate():
    start = time.perf_counter()
    rows = table1(n=4)
    elapsed = time.perf_counter() - start
    text = format_table1(rows)
    write_result("table1.txt", text)
    write_bench_json(
        "table1_callables",
        [bench_record("table1-n4", "all-compilers", elapsed * 1e3)],
    )
    return rows


def test_table1_shape(benchmark):
    rows = benchmark.pedantic(_generate, rounds=1, iterations=1)
    for row in rows:
        assert row.qsharp_create > 0, row.algorithm
        assert row.asdf_noopt_create > 0, row.algorithm
        assert row.asdf_noopt_invoke > 0, row.algorithm
        # The paper's headline: inlining eliminates every callable.
        assert row.asdf_opt_create == 0, row.algorithm
        assert row.asdf_opt_invoke == 0, row.algorithm
