"""Observability must be near-free when it is off.

The tracing/metrics layer (repro.obs) instruments the hot execution
path — chunk dispatch, per-sweep simulation, cache lookups — with
``span()`` guards and counter increments that are always compiled in.
The claim gated here, per docs/observability.md: with tracing
**disabled** (the shipped default) the instrumented stack costs at
most **5%** over the same stack with every metric update suppressed
too (``metrics.disabled()``), measured min-of-N with the
configurations interleaved so drift hits all of them equally.

Three configurations of one hot workload (a noisy-trajectory
bv run sharded over in-process chunks, compile cache warm — every
shot walks the instrumented sweep/chunk path):

- ``bare``        — tracing off AND metric updates suppressed
- ``tracing-off`` — the shipped default (metrics on, tracing off)
- ``tracing-on``  — full span recording to an in-memory tracer

All three land in BENCH_obs.json so the trajectory shows what
observability costs at each level; the committed baseline feeds the
usual ``check_bench_json.py --compare`` gate, and the 5% bound is
asserted right here (env ``BENCH_OBS_MAX_OVERHEAD`` overrides for
noisy CI hosts).
"""

import os
import time

from conftest import bench_record, write_bench_json, write_result

from repro.algorithms import alternating_secret, bernstein_vazirani
from repro.exec.parallel import parallel_run_with_info
from repro.noise import NoiseModel, depolarizing
from repro.obs import metrics, trace
from repro.pipeline import compile_kernel

N = 5
SHOTS = 2048
WORKERS = 4
ROUNDS = 5

#: tracing-off may cost at most this factor over bare.
MAX_OVERHEAD = float(os.environ.get("BENCH_OBS_MAX_OVERHEAD", "1.05"))


def _workload(circuit, noise):
    results, info = parallel_run_with_info(
        circuit,
        SHOTS,
        seed=13,
        workers=WORKERS,
        noise_model=noise,
        use_processes=False,
    )
    assert len(results) == SHOTS
    return info


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_obs_overhead_gate():
    circuit = compile_kernel(
        bernstein_vazirani(alternating_secret(N)), cache=True
    ).execution_circuit
    noise = NoiseModel().add_channel(depolarizing(0.01))

    def bare():
        with metrics.disabled():
            _workload(circuit, noise)

    def tracing_off():
        _workload(circuit, noise)

    def tracing_on():
        trace.enable_tracing()
        try:
            _workload(circuit, noise)
        finally:
            trace.disable_tracing()

    configurations = {
        "bare": bare,
        "tracing-off": tracing_off,
        "tracing-on": tracing_on,
    }
    for fn in configurations.values():
        fn()  # warm: compile cache, allocators, imports

    # Interleave rounds so clock drift and cache state hit every
    # configuration equally; keep the min (least-noisy statistic,
    # matching the --compare gate's reduction).
    best = {name: float("inf") for name in configurations}
    for _ in range(ROUNDS):
        for name, fn in configurations.items():
            best[name] = min(best[name], _timed(fn))

    overhead = best["tracing-off"] / best["bare"]
    traced = best["tracing-on"] / best["bare"]
    info = _workload(circuit, noise)

    write_bench_json(
        "obs",
        [
            bench_record(
                "obs-overhead",
                name,
                best[name] * 1e3,
                shots=SHOTS,
                kernel=info.kernel,
            )
            for name in configurations
        ],
    )
    write_result(
        "obs_overhead.txt",
        f"hot workload: noisy bv n={N}, {SHOTS} shots, "
        f"{WORKERS} in-process chunks, min of {ROUNDS} interleaved "
        f"rounds\n"
        f"bare        : {best['bare'] * 1e3:8.2f} ms\n"
        f"tracing-off : {best['tracing-off'] * 1e3:8.2f} ms "
        f"({overhead:.3f}x of bare; gate <= {MAX_OVERHEAD})\n"
        f"tracing-on  : {best['tracing-on'] * 1e3:8.2f} ms "
        f"({traced:.3f}x of bare)\n",
    )

    assert overhead <= MAX_OVERHEAD, (
        f"disabled-tracing instrumentation costs {overhead:.3f}x over "
        f"the suppressed substrate (gate {MAX_OVERHEAD}x): the no-op "
        f"path has stopped being near-free"
    )
