"""Ablation: ancilla-free XOR oracle synthesis (paper §8.3).

The paper attributes ASDF's win over Quipper's oracle synthesis to
tweedledum intentionally avoiding ancilla qubits for XOR operations.
This bench compares ASDF's Bennett embedding against the Quipper-style
ancilla-per-XOR baseline on the Deutsch-Jozsa oracle.
"""

import time

from conftest import bench_record, write_bench_json, write_result

from repro.baselines import build_baseline, transpile_o3
from repro.evaluation import compiled_circuit
from repro.resources import estimate_physical_resources


def _ablation(n=32):
    start = time.perf_counter()
    asdf = compiled_circuit("dj", "asdf", n)
    asdf_seconds = time.perf_counter() - start
    start = time.perf_counter()
    quipper = transpile_o3(build_baseline("dj", "quipper", n), "quipper")
    quipper_seconds = time.perf_counter() - start
    write_bench_json(
        "ablation_xor",
        [
            bench_record("dj-n32-synthesis", "asdf-xag", asdf_seconds * 1e3),
            bench_record(
                "dj-n32-synthesis", "quipper-xor", quipper_seconds * 1e3
            ),
        ],
    )
    rows = []
    for label, circuit in (("asdf-xag", asdf), ("quipper-xor", quipper)):
        estimate = estimate_physical_resources(circuit)
        rows.append(
            (label, circuit.num_qubits, len(circuit.gates),
             estimate.physical_kiloqubits)
        )
    text = "DJ n=32: oracle synthesis ablation\n" + "\n".join(
        f"  {label:<12} qubits={q:>4}  gates={g:>6}  kq={kq:>8.1f}"
        for label, q, g, kq in rows
    )
    write_result("ablation_xor.txt", text)
    return rows


def test_xag_synthesis_avoids_ancillas(benchmark):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)
    by_label = {label: (q, g, kq) for label, q, g, kq in rows}
    assert by_label["asdf-xag"][0] < by_label["quipper-xor"][0]
    assert by_label["asdf-xag"][2] < by_label["quipper-xor"][2]
