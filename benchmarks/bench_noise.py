"""Noise subsystem benchmarks: ideal vs density-matrix vs unraveled.

Not a paper figure — the paper's evaluation (§7–§8) executes ideal
circuits only — but the noisy-execution analogue of the Fig. 11 shot
benchmarks: fidelity-vs-noise-strength tables from the exact
density-matrix reference, convergence of the stochastic Kraus
unraveling to it, and the wall-clock comparison between the exact
``density_matrix`` backend, the batched unraveled ``statevector``
backend, and the per-shot ``interpreter`` under the same model.
"""

import math
import time

from conftest import bench_record, write_bench_json, write_result

from repro.evaluation import (
    format_noisy_report,
    noisy_execution_report,
)
from repro.noise import standard_noise_model
from repro.qcircuit.examples import teleport_circuit
from repro.sim.backend import run_circuit_with_info
from repro.sim.density import DensityMatrixBackend
from tests.stats import assert_matches_distribution


def test_noise_fidelity_vs_strength_table():
    """The headline table: every workload/backend across strengths,
    with exact fidelity-vs-ideal and per-backend sampling TVD."""
    rows = noisy_execution_report(shots=2048)
    write_result("noise_fidelity.txt", format_noisy_report(rows))
    write_bench_json(
        "noise",
        [
            bench_record(
                f"{row.workload}-p{row.strength:g}",
                row.backend,
                row.seconds * 1e3,
                shots=row.shots,
                evolutions=row.evolutions,
            )
            for row in rows
        ],
    )
    by_key = {
        (r.workload, r.backend, r.strength): r for r in rows
    }
    workloads = sorted({r.workload for r in rows})
    strengths = sorted({r.strength for r in rows})
    for workload in workloads:
        # Fidelity starts at 1 and decays monotonically with strength.
        fidelities = [
            by_key[(workload, "density_matrix", p)].fidelity
            for p in strengths
        ]
        assert math.isclose(fidelities[0], 1.0, rel_tol=1e-12), workload
        assert all(
            earlier >= later
            for earlier, later in zip(fidelities, fidelities[1:])
        ), (workload, fidelities)
        assert fidelities[-1] < 1.0, workload
        for strength in strengths:
            density = by_key[(workload, "density_matrix", strength)]
            unraveled = by_key[(workload, "statevector", strength)]
            # Both backends agree on the model's fidelity (it is a
            # property of the exact distribution)...
            assert density.fidelity == unraveled.fidelity
            # ...and both sample it faithfully at 2048 shots.
            assert density.sampling_tvd < 0.1, (workload, strength)
            assert unraveled.sampling_tvd < 0.1, (workload, strength)
            # Honest telemetry: noise events appear iff noise is on.
            for row in (density, unraveled):
                if strength == 0.0:
                    assert row.channel_applications == 0
                else:
                    assert row.channel_applications > 0
                    assert row.readout_applications > 0


def test_noise_unraveled_timing_smoke():
    """Teleport at 4096 shots under depolarizing + readout noise: the
    batched unraveling must stay one sweep and beat the per-shot
    interpreter by >= 3x wall-clock (the noisy analogue of the PR 4
    batched-teleport smoke; the margin is lower because every gate now
    carries Kraus-draw work in both engines)."""
    circuit = teleport_circuit()
    model = standard_noise_model(0.05)
    shots = 4096

    start = time.perf_counter()
    _, interp_info = run_circuit_with_info(
        circuit, shots=shots, seed=0,
        backend="interpreter", noise_model=model,
    )
    interp_seconds = time.perf_counter() - start
    assert interp_info.evolutions == shots

    # Best of three, like the other speedup smokes, so a scheduler
    # stall on a contended CI runner cannot fake a slowdown.
    batched_seconds = math.inf
    for _ in range(3):
        start = time.perf_counter()
        _, batched_info = run_circuit_with_info(
            circuit, shots=shots, seed=0,
            backend="statevector", noise_model=model,
        )
        batched_seconds = min(
            batched_seconds, time.perf_counter() - start
        )
    assert batched_info.batched and batched_info.evolutions == 1
    # Per-sweep event counts: 9 single-qubit channel applications
    # (rx, h, 2x cx on two qubits each, h, two conditioned
    # corrections), 3 measurements through the confusion matrix.
    assert batched_info.channel_applications == 9
    assert batched_info.readout_applications == 3

    start = time.perf_counter()
    density_results, density_info = run_circuit_with_info(
        circuit, shots=shots, seed=0,
        backend="density_matrix", noise_model=model,
    )
    density_seconds = time.perf_counter() - start
    assert density_info.evolutions == 1

    speedup = interp_seconds / batched_seconds
    write_result(
        "noise_teleport_timing.txt",
        f"teleportation under standard_noise_model(0.05), {shots} shots\n"
        f"interpreter (per-shot unraveling): {interp_seconds:.4f} s "
        f"({interp_info.evolutions} evolutions, "
        f"{interp_info.channel_applications} channel events)\n"
        f"statevector (batched unraveling):  {batched_seconds:.4f} s "
        f"({batched_info.evolutions} sweep, "
        f"{batched_info.channel_applications} channel events)\n"
        f"density_matrix (exact):            {density_seconds:.4f} s "
        f"({density_info.evolutions} evolution)\n"
        f"batched speedup over interpreter: {speedup:.1f}x\n",
    )
    write_bench_json(
        "noise",
        [
            bench_record(
                "teleport-noisy-4096shots", "interpreter",
                interp_seconds * 1e3,
                shots=shots, evolutions=interp_info.evolutions,
            ),
            bench_record(
                "teleport-noisy-4096shots", "statevector-batched",
                batched_seconds * 1e3,
                shots=shots, evolutions=batched_info.evolutions,
            ),
            bench_record(
                "teleport-noisy-4096shots", "density_matrix",
                density_seconds * 1e3,
                shots=shots, evolutions=density_info.evolutions,
            ),
        ],
    )
    assert speedup >= 3.0, speedup

    # And the fast engine is still *correct*: its histogram converges
    # to the density-matrix reference distribution.
    exact = DensityMatrixBackend().output_distribution(circuit, model)
    unraveled_results, _ = run_circuit_with_info(
        circuit, shots=shots, seed=0,
        backend="statevector", noise_model=model,
    )
    assert_matches_distribution(
        unraveled_results, exact, label="noisy teleport smoke"
    )
    assert_matches_distribution(
        density_results, exact, label="density sampling smoke"
    )
